#include "graph/serialize.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "util/binio.h"

namespace blink {

namespace {

using binio::File;
using binio::ReadAll;
using binio::ReadPod;
using binio::WriteAll;
using binio::WritePod;

constexpr uint32_t kGraphMagic = 0x47414C42u;  // "BLAG"
constexpr uint32_t kLvqMagic = 0x51414C42u;    // "BLAQ"
constexpr uint32_t kLvq2Magic = 0x32414C42u;   // "BLA2"
constexpr uint32_t kDynMagic = 0x59444C42u;    // "BLDY"
constexpr uint32_t kVersion = 1;

// Storage kind tags of the dynamic-index container.
constexpr uint32_t kDynKindF32 = 0;
constexpr uint32_t kDynKindLvq = 1;

Status SaveLvqTo(FILE* f, const LvqDataset& ds, const std::string& path) {
  const uint64_t n = ds.size(), d = ds.dim();
  const uint32_t bits = static_cast<uint32_t>(ds.bits());
  const uint64_t padding = ds.padding();
  if (!WritePod(f, kLvqMagic) || !WritePod(f, kVersion) || !WritePod(f, n) ||
      !WritePod(f, d) || !WritePod(f, bits) || !WritePod(f, padding) ||
      !WriteAll(f, ds.mean().data(), d * sizeof(float)) ||
      !WriteAll(f, ds.raw_blob(), n * ds.vector_footprint())) {
    return Status::IOError(path + ": LVQ write failed");
  }
  return Status::OK();
}

Result<LvqDataset> LoadLvqFrom(FILE* f, const std::string& path,
                               bool use_huge_pages) {
  uint32_t magic = 0, version = 0, bits = 0;
  uint64_t n = 0, d = 0, padding = 0;
  if (!ReadPod(f, &magic) || magic != kLvqMagic) {
    return Status::IOError(path + ": bad LVQ magic");
  }
  if (!ReadPod(f, &version) || version != kVersion) {
    return Status::IOError(path + ": unsupported LVQ version");
  }
  if (!ReadPod(f, &n) || !ReadPod(f, &d) || !ReadPod(f, &bits) ||
      !ReadPod(f, &padding) || bits < 1 || bits > 16) {
    return Status::IOError(path + ": corrupt LVQ header");
  }
  std::vector<float> mean(d);
  if (!ReadAll(f, mean.data(), d * sizeof(float))) {
    return Status::IOError(path + ": truncated LVQ mean");
  }
  const size_t raw =
      LvqDataset::kHeaderBytes + PackedBytes(d, static_cast<int>(bits));
  const size_t stride = LvqPaddedStride(raw, padding);
  std::vector<uint8_t> blob(n * stride);
  if (!ReadAll(f, blob.data(), blob.size())) {
    return Status::IOError(path + ": truncated LVQ payload");
  }
  return LvqDataset::FromRaw(n, d, static_cast<int>(bits), padding,
                             std::move(mean), blob.data(), blob.size(),
                             use_huge_pages);
}

}  // namespace

Status SaveGraph(const std::string& path, const FlatGraph& graph,
                 uint32_t entry_point) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  const uint64_t n = graph.size();
  const uint32_t R = graph.max_degree();
  if (!WritePod(f.get(), kGraphMagic) || !WritePod(f.get(), kVersion) ||
      !WritePod(f.get(), n) || !WritePod(f.get(), R) ||
      !WritePod(f.get(), entry_point)) {
    return Status::IOError(path + ": header write failed");
  }
  for (size_t i = 0; i < n; ++i) {
    const uint32_t deg = graph.degree(i);
    if (!WritePod(f.get(), deg) ||
        !WriteAll(f.get(), graph.neighbors(i), deg * sizeof(uint32_t))) {
      return Status::IOError(path + ": adjacency write failed");
    }
  }
  return Status::OK();
}

Result<BuiltGraph> LoadGraph(const std::string& path, bool use_huge_pages) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  uint32_t magic = 0, version = 0, R = 0, entry = 0;
  uint64_t n = 0;
  if (!ReadPod(f.get(), &magic) || magic != kGraphMagic) {
    return Status::IOError(path + ": bad graph magic");
  }
  if (!ReadPod(f.get(), &version) || version != kVersion) {
    return Status::IOError(path + ": unsupported graph version");
  }
  if (!ReadPod(f.get(), &n) || !ReadPod(f.get(), &R) ||
      !ReadPod(f.get(), &entry)) {
    return Status::IOError(path + ": corrupt graph header");
  }
  BuiltGraph out;
  out.graph = FlatGraph(n, R, use_huge_pages);
  out.entry_point = entry;
  std::vector<uint32_t> row(R);
  for (size_t i = 0; i < n; ++i) {
    uint32_t deg = 0;
    if (!ReadPod(f.get(), &deg) || deg > R) {
      return Status::IOError(path + ": corrupt adjacency row");
    }
    if (!ReadAll(f.get(), row.data(), deg * sizeof(uint32_t))) {
      return Status::IOError(path + ": truncated adjacency row");
    }
    for (uint32_t e = 0; e < deg; ++e) {
      if (row[e] >= n) return Status::IOError(path + ": neighbor id out of range");
    }
    out.graph.SetNeighbors(i, row.data(), deg);
  }
  return out;
}

Status SaveLvq(const std::string& path, const LvqDataset& ds) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  return SaveLvqTo(f.get(), ds, path);
}

Result<LvqDataset> LoadLvq(const std::string& path, bool use_huge_pages) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  return LoadLvqFrom(f.get(), path, use_huge_pages);
}

Status SaveLvq2(const std::string& path, const LvqDataset2& ds) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  const uint32_t bits2 = static_cast<uint32_t>(ds.bits2());
  if (!WritePod(f.get(), kLvq2Magic) || !WritePod(f.get(), kVersion) ||
      !WritePod(f.get(), bits2)) {
    return Status::IOError(path + ": header write failed");
  }
  BLINK_RETURN_NOT_OK(SaveLvqTo(f.get(), ds.level1(), path));
  if (!WriteAll(f.get(), ds.raw_residuals(),
                ds.size() * ds.residual_stride())) {
    return Status::IOError(path + ": residual write failed");
  }
  return Status::OK();
}

Result<LvqDataset2> LoadLvq2(const std::string& path, bool use_huge_pages) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  uint32_t magic = 0, version = 0, bits2 = 0;
  if (!ReadPod(f.get(), &magic) || magic != kLvq2Magic) {
    return Status::IOError(path + ": bad LVQ2 magic");
  }
  if (!ReadPod(f.get(), &version) || version != kVersion ||
      !ReadPod(f.get(), &bits2) || bits2 < 1 || bits2 > 16) {
    return Status::IOError(path + ": corrupt LVQ2 header");
  }
  Result<LvqDataset> level1 = LoadLvqFrom(f.get(), path, use_huge_pages);
  if (!level1.ok()) return level1.status();
  const size_t n = level1.value().size();
  const size_t stride = PackedBytes(level1.value().dim(), static_cast<int>(bits2));
  std::vector<uint8_t> residuals(n * stride);
  if (!ReadAll(f.get(), residuals.data(), residuals.size())) {
    return Status::IOError(path + ": truncated residuals");
  }
  return LvqDataset2::FromRaw(std::move(level1).value(),
                              static_cast<int>(bits2), residuals.data(),
                              residuals.size(), use_huge_pages);
}

// ---------------------------------------------------------------------------
// Dynamic index bundles ("BLDY"): one file holding the storage rows, the
// tombstone flags, the free-slot list (recycling order is state — it
// determines the ids future inserts receive) and the adjacency rows.
// ---------------------------------------------------------------------------

namespace {

struct DynHeader {
  uint32_t kind = 0;
  uint64_t dim = 0;
  uint64_t n = 0;
  uint64_t num_deleted = 0;
  uint32_t entry = 0;
  uint32_t max_degree = 0;
};

Status WriteDynHeader(FILE* f, const DynHeader& h, const std::string& path) {
  if (!WritePod(f, kDynMagic) || !WritePod(f, kVersion) ||
      !WritePod(f, h.kind) || !WritePod(f, h.dim) || !WritePod(f, h.n) ||
      !WritePod(f, h.num_deleted) || !WritePod(f, h.entry) ||
      !WritePod(f, h.max_degree)) {
    return Status::IOError(path + ": dynamic header write failed");
  }
  return Status::OK();
}

Result<DynHeader> ReadDynHeader(FILE* f, const std::string& path) {
  uint32_t magic = 0, version = 0;
  DynHeader h;
  if (!ReadPod(f, &magic) || magic != kDynMagic) {
    return Status::IOError(path + ": bad dynamic-index magic");
  }
  if (!ReadPod(f, &version) || version != kVersion) {
    return Status::IOError(path + ": unsupported dynamic-index version");
  }
  // Sanity bounds keep a corrupt header from driving the size arithmetic
  // below into overflow or absurd allocations (cf. the MakeAligned guard).
  constexpr uint64_t kMaxDim = 1u << 20;
  constexpr uint64_t kMaxDegree = 1u << 20;
  if (!ReadPod(f, &h.kind) || !ReadPod(f, &h.dim) || !ReadPod(f, &h.n) ||
      !ReadPod(f, &h.num_deleted) || !ReadPod(f, &h.entry) ||
      !ReadPod(f, &h.max_degree) || h.dim == 0 || h.dim > kMaxDim ||
      h.max_degree == 0 || h.max_degree > kMaxDegree ||
      h.num_deleted > h.n || h.n > (1ull << 40)) {
    return Status::IOError(path + ": corrupt dynamic-index header");
  }
  if (h.entry != DynamicIndex::kNoEntry && h.entry >= h.n) {
    return Status::IOError(path + ": entry point out of range");
  }
  return h;
}

/// The state shared by both storage kinds, written after the payload.
template <typename Index>
Status WriteDynState(FILE* f, const Index& index, size_t n,
                     const std::string& path) {
  if (!WriteAll(f, index.deleted_flags().data(), n)) {
    return Status::IOError(path + ": tombstone-flag write failed");
  }
  const uint64_t free_count = index.free_slots().size();
  if (!WritePod(f, free_count) ||
      !WriteAll(f, index.free_slots().data(),
                free_count * sizeof(uint32_t))) {
    return Status::IOError(path + ": free-slot write failed");
  }
  for (size_t i = 0; i < n; ++i) {
    const uint32_t deg = index.graph().degree(i);
    if (!WritePod(f, deg) ||
        !WriteAll(f, index.graph().neighbors(i), deg * sizeof(uint32_t))) {
      return Status::IOError(path + ": adjacency write failed");
    }
  }
  return Status::OK();
}

Status ReadDynState(FILE* f, const DynHeader& h, size_t capacity,
                    FlatGraph* graph, std::vector<uint8_t>* deleted,
                    std::vector<uint32_t>* free_slots,
                    const std::string& path) {
  const size_t n = h.n;
  deleted->assign(n, 0);
  if (!ReadAll(f, deleted->data(), n)) {
    return Status::IOError(path + ": truncated tombstone flags");
  }
  // Flags are the dynamic index's slot states: 0 live, 1 tombstoned
  // (navigable), 2 purged (queued for recycling). Their total must match
  // the header's deleted count.
  size_t flagged = 0;
  for (uint8_t flag : *deleted) {
    if (flag > 2) return Status::IOError(path + ": corrupt tombstone flag");
    if (flag != 0) ++flagged;
  }
  if (flagged != h.num_deleted) {
    return Status::IOError(path + ": tombstone flags disagree with header");
  }
  uint64_t free_count = 0;
  if (!ReadPod(f, &free_count) || free_count > n) {
    return Status::IOError(path + ": corrupt free-slot count");
  }
  free_slots->resize(free_count);
  if (!ReadAll(f, free_slots->data(), free_count * sizeof(uint32_t))) {
    return Status::IOError(path + ": truncated free-slot list");
  }
  for (uint32_t s : *free_slots) {
    // Exactly the purged slots are queued for reuse (graph/dynamic.cc).
    if (s >= n || (*deleted)[s] != 2) {
      return Status::IOError(path + ": corrupt free-slot list");
    }
  }
  *graph = FlatGraph(capacity, h.max_degree, /*use_huge_pages=*/false);
  std::vector<uint32_t> row(h.max_degree);
  for (size_t i = 0; i < n; ++i) {
    uint32_t deg = 0;
    if (!ReadPod(f, &deg) || deg > h.max_degree) {
      return Status::IOError(path + ": corrupt adjacency row");
    }
    if (!ReadAll(f, row.data(), deg * sizeof(uint32_t))) {
      return Status::IOError(path + ": truncated adjacency row");
    }
    for (uint32_t e = 0; e < deg; ++e) {
      if (row[e] >= n) {
        return Status::IOError(path + ": neighbor id out of range");
      }
    }
    graph->SetNeighbors(i, row.data(), deg);
  }
  return Status::OK();
}

/// Capacity a restored index is provisioned with: at least the saved rows,
/// the caller's requested floor, and the constructor's minimum.
size_t RestoredCapacity(const DynHeader& h, const DynamicOptions& opts) {
  return std::max<size_t>(std::max<size_t>(h.n, opts.initial_capacity), 16);
}

}  // namespace

Status SaveDynamic(const std::string& path, const DynamicIndex& index) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  DynHeader h;
  h.kind = kDynKindF32;
  h.dim = index.dim();
  h.n = index.size();
  h.num_deleted = index.num_deleted();
  h.entry = index.entry_point();
  h.max_degree = index.max_degree();
  BLINK_RETURN_NOT_OK(WriteDynHeader(f.get(), h, path));
  if (!WriteAll(f.get(), index.storage().raw_rows(),
                h.n * h.dim * sizeof(float))) {
    return Status::IOError(path + ": vector write failed");
  }
  return WriteDynState(f.get(), index, h.n, path);
}

Status SaveDynamic(const std::string& path, const DynamicLvqIndex& index) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  const DynamicLvqDataset& ds = index.storage().dataset();
  DynHeader h;
  h.kind = kDynKindLvq;
  h.dim = index.dim();
  h.n = index.size();
  h.num_deleted = index.num_deleted();
  h.entry = index.entry_point();
  h.max_degree = index.max_degree();
  BLINK_RETURN_NOT_OK(WriteDynHeader(f.get(), h, path));
  const uint32_t bits1 = static_cast<uint32_t>(ds.bits1());
  const uint32_t bits2 = static_cast<uint32_t>(ds.bits2());
  const uint64_t padding = ds.padding();
  if (!WritePod(f.get(), bits1) || !WritePod(f.get(), bits2) ||
      !WritePod(f.get(), padding) ||
      !WriteAll(f.get(), ds.mean().data(), h.dim * sizeof(float)) ||
      !WriteAll(f.get(), ds.raw_blob(), h.n * ds.stride()) ||
      !WriteAll(f.get(), ds.raw_residuals(), h.n * ds.residual_stride())) {
    return Status::IOError(path + ": LVQ payload write failed");
  }
  return WriteDynState(f.get(), index, h.n, path);
}

Result<std::unique_ptr<DynamicIndex>> LoadDynamicF32(const std::string& path,
                                                     DynamicOptions opts) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  Result<DynHeader> header = ReadDynHeader(f.get(), path);
  if (!header.ok()) return header.status();
  const DynHeader h = header.value();
  if (h.kind != kDynKindF32) {
    return Status::InvalidArgument(path + ": not a float32 dynamic index");
  }
  opts.graph_max_degree = h.max_degree;
  const size_t capacity = RestoredCapacity(h, opts);
  DynamicFloatStorage storage(h.dim, opts.metric);
  storage.Grow(capacity);
  std::vector<float> rows(h.n * h.dim);
  if (!ReadAll(f.get(), rows.data(), rows.size() * sizeof(float))) {
    return Status::IOError(path + ": truncated vectors");
  }
  storage.RestoreRows(rows.data(), h.n);
  FlatGraph graph;
  std::vector<uint8_t> deleted;
  std::vector<uint32_t> free_slots;
  BLINK_RETURN_NOT_OK(
      ReadDynState(f.get(), h, capacity, &graph, &deleted, &free_slots, path));
  return DynamicIndex::Restore(h.dim, opts, std::move(storage),
                               std::move(graph), std::move(deleted),
                               std::move(free_slots), h.n, h.num_deleted,
                               h.entry);
}

Result<std::unique_ptr<DynamicLvqIndex>> LoadDynamicLvq(
    const std::string& path, DynamicOptions opts) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  Result<DynHeader> header = ReadDynHeader(f.get(), path);
  if (!header.ok()) return header.status();
  const DynHeader h = header.value();
  if (h.kind != kDynKindLvq) {
    return Status::InvalidArgument(path + ": not an LVQ dynamic index");
  }
  opts.graph_max_degree = h.max_degree;
  uint32_t bits1 = 0, bits2 = 0;
  uint64_t padding = 0;
  if (!ReadPod(f.get(), &bits1) || !ReadPod(f.get(), &bits2) ||
      !ReadPod(f.get(), &padding) || bits1 < 1 || bits1 > 16 || bits2 > 16 ||
      padding > (1u << 20)) {  // bounded so the stride can't overflow
    return Status::IOError(path + ": corrupt LVQ dynamic header");
  }
  DynamicLvqDataset::Options lvq_opts;
  lvq_opts.bits1 = static_cast<int>(bits1);
  lvq_opts.bits2 = static_cast<int>(bits2);
  lvq_opts.padding = padding;
  lvq_opts.mean.resize(h.dim);
  if (!ReadAll(f.get(), lvq_opts.mean.data(), h.dim * sizeof(float))) {
    return Status::IOError(path + ": truncated mean");
  }
  DynamicLvqStorage storage(h.dim, opts.metric, std::move(lvq_opts));
  const size_t capacity = RestoredCapacity(h, opts);
  storage.Grow(capacity);
  const DynamicLvqDataset& ds = storage.dataset();
  std::vector<uint8_t> blob(h.n * ds.stride());
  std::vector<uint8_t> residuals(h.n * ds.residual_stride());
  if (!ReadAll(f.get(), blob.data(), blob.size()) ||
      !ReadAll(f.get(), residuals.data(), residuals.size())) {
    return Status::IOError(path + ": truncated LVQ payload");
  }
  storage.dataset().RestoreRows(blob.data(), residuals.data(), h.n);
  FlatGraph graph;
  std::vector<uint8_t> deleted;
  std::vector<uint32_t> free_slots;
  BLINK_RETURN_NOT_OK(
      ReadDynState(f.get(), h, capacity, &graph, &deleted, &free_slots, path));
  return DynamicLvqIndex::Restore(h.dim, opts, std::move(storage),
                                  std::move(graph), std::move(deleted),
                                  std::move(free_slots), h.n, h.num_deleted,
                                  h.entry);
}

Status SaveOgLvqIndex(const std::string& prefix,
                      const VamanaIndex<LvqStorage>& index) {
  if (index.storage().has_second_level()) {
    BLINK_RETURN_NOT_OK(SaveLvq2(prefix + ".vecs", *index.storage().level2()));
  } else {
    BLINK_RETURN_NOT_OK(SaveLvq(prefix + ".vecs", index.storage().level1()));
  }
  return SaveGraph(prefix + ".graph", index.graph(), index.entry_point());
}

Result<std::unique_ptr<VamanaIndex<LvqStorage>>> LoadOgLvqIndex(
    const std::string& prefix, Metric metric, const VamanaBuildParams& bp,
    bool use_huge_pages) {
  Result<BuiltGraph> graph = LoadGraph(prefix + ".graph", use_huge_pages);
  if (!graph.ok()) return graph.status();
  // The on-disk graph knows its own degree; don't let the caller's default
  // build params misreport it (e.g. in name()).
  VamanaBuildParams actual = bp;
  actual.graph_max_degree = graph.value().graph.max_degree();
  // Try two-level first, fall back to one-level.
  Result<LvqDataset2> two = LoadLvq2(prefix + ".vecs", use_huge_pages);
  if (two.ok()) {
    LvqStorage storage(std::move(two).value(), metric);
    return std::make_unique<VamanaIndex<LvqStorage>>(
        std::move(storage), std::move(graph).value(), actual);
  }
  Result<LvqDataset> one = LoadLvq(prefix + ".vecs", use_huge_pages);
  if (!one.ok()) return one.status();
  LvqStorage storage(std::move(one).value(), metric);
  return std::make_unique<VamanaIndex<LvqStorage>>(
      std::move(storage), std::move(graph).value(), actual);
}

}  // namespace blink
