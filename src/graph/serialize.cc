#include "graph/serialize.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "util/binio.h"

namespace blink {

namespace {

using binio::File;
using binio::ReadAll;
using binio::ReadPod;
using binio::WriteAll;
using binio::WritePod;

constexpr uint32_t kGraphMagic = 0x47414C42u;  // "BLAG"
constexpr uint32_t kLvqMagic = 0x51414C42u;    // "BLAQ"
constexpr uint32_t kLvq2Magic = 0x32414C42u;   // "BLA2"
constexpr uint32_t kF32Magic = 0x46414C42u;    // "BLAF"
constexpr uint32_t kF16Magic = 0x48414C42u;    // "BLAH"
constexpr uint32_t kDynMagic = 0x59444C42u;    // "BLDY"
constexpr uint32_t kLeanVecMagic = 0x564C4C42u;  // "BLLV"
constexpr uint32_t kVersion = 1;
// Version 2 appends the IndexMeta block (graph) or the extended header
// fields (dynamic); version-1 files remain loadable.
constexpr uint32_t kVersionMeta = 2;
// Version 3 zero-pads to a 64-byte file offset before each payload
// section, and the graph payload becomes fixed-stride rows — the layout a
// mapping can serve directly (DESIGN.md D12). v1/v2 files remain loadable.
constexpr uint32_t kVersionAligned = 3;

// File-offset alignment of v3 payload sections. Mappings are page-aligned,
// so a 64-byte file offset is a 64-byte (cache-line / SIMD-load) address.
constexpr size_t kSectionAlign = 64;

// Storage kind tags of the dynamic-index container.
constexpr uint32_t kDynKindF32 = 0;
constexpr uint32_t kDynKindLvq = 1;

// Primary-encoding kind tags of the LeanVec ("BLLV") container.
constexpr uint32_t kLeanVecKindF32 = 0;
constexpr uint32_t kLeanVecKindLvq = 1;

uint32_t MetricToWire(Metric m) {
  return m == Metric::kInnerProduct ? 1u : 0u;
}

Status MetricFromWire(uint32_t w, Metric* out, const std::string& path) {
  if (w > 1) return Status::IOError(path + ": unknown metric tag");
  *out = w == 1 ? Metric::kInnerProduct : Metric::kL2;
  return Status::OK();
}

/// Bytes between the stream position and end-of-file, so loaders can
/// reject a corrupt header whose counts imply more payload than the file
/// holds *before* sizing any allocation from them (cf. the manifest
/// loader's file-size check). 0 on a non-seekable stream keeps the
/// check permissive there (plain files are the only real input).
uint64_t RemainingBytes(FILE* f) {
  const long pos = std::ftell(f);
  if (pos < 0) return 0;
  if (std::fseek(f, 0, SEEK_END) != 0) return 0;
  const long end = std::ftell(f);
  std::fseek(f, pos, SEEK_SET);
  return end > pos ? static_cast<uint64_t>(end - pos) : 0;
}

/// Zero-pads the stream to the next kSectionAlign file offset (v3 writers).
bool WriteSectionPad(FILE* f) {
  const long pos = std::ftell(f);
  if (pos < 0) return false;
  const size_t rem = static_cast<size_t>(pos) % kSectionAlign;
  if (rem == 0) return true;
  const uint8_t zeros[kSectionAlign] = {};
  return WriteAll(f, zeros, kSectionAlign - rem);
}

/// Consumes the v3 section padding on the read side.
bool SkipSectionPad(FILE* f) {
  const long pos = std::ftell(f);
  if (pos < 0) return false;
  const size_t rem = static_cast<size_t>(pos) % kSectionAlign;
  return rem == 0 || std::fseek(f, kSectionAlign - rem, SEEK_CUR) == 0;
}

/// Bounds-checked cursor over a mapped artifact — the ByteReader twin of
/// the FILE* helpers, for loaders that parse headers in place.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Read(T* v) {
    if (sizeof(T) > size_ - off_) return false;
    std::memcpy(v, data_ + off_, sizeof(T));
    off_ += sizeof(T);
    return true;
  }

  bool ReadBytes(void* out, size_t bytes) {
    if (bytes > size_ - off_) return false;
    std::memcpy(out, data_ + off_, bytes);
    off_ += bytes;
    return true;
  }

  bool Align(size_t alignment) {
    const size_t rem = off_ % alignment;
    if (rem == 0) return true;
    const size_t pad = alignment - rem;
    if (pad > size_ - off_) return false;
    off_ += pad;
    return true;
  }

  /// Consumes `bytes` without copying (in-place payload sections).
  bool Advance(size_t bytes) {
    if (bytes > size_ - off_) return false;
    off_ += bytes;
    return true;
  }

  const uint8_t* cursor() const { return data_ + off_; }
  size_t remaining() const { return size_ - off_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t off_ = 0;
};

/// Lets the header-parsing templates below read from either stream kind.
template <typename T>
bool ReadPod(ByteReader* r, T* v) {
  return r->Read(v);
}

Status SaveLvqTo(FILE* f, const LvqDataset& ds, const std::string& path) {
  const uint64_t n = ds.size(), d = ds.dim();
  const uint32_t bits = static_cast<uint32_t>(ds.bits());
  const uint64_t padding = ds.padding();
  if (!WritePod(f, kLvqMagic) || !WritePod(f, kVersionAligned) ||
      !WritePod(f, n) || !WritePod(f, d) || !WritePod(f, bits) ||
      !WritePod(f, padding) ||
      !WriteAll(f, ds.mean().data(), d * sizeof(float)) ||
      !WriteSectionPad(f) ||
      !WriteAll(f, ds.raw_blob(), n * ds.vector_footprint())) {
    return Status::IOError(path + ": LVQ write failed");
  }
  return Status::OK();
}

/// Header fields shared by the FILE* and mapped BLAQ readers, validated
/// identically in both.
struct LvqHeader {
  uint64_t n = 0, d = 0, padding = 0;
  uint32_t version = 0, bits = 0;
  size_t stride = 0;
};

template <typename Reader>
Status ReadLvqHeader(Reader* r, LvqHeader* h, const std::string& path) {
  uint32_t magic = 0;
  if (!ReadPod(r, &magic) || magic != kLvqMagic) {
    return Status::IOError(path + ": bad LVQ magic");
  }
  if (!ReadPod(r, &h->version) ||
      (h->version != kVersion && h->version != kVersionAligned)) {
    return Status::IOError(path + ": unsupported LVQ version");
  }
  if (!ReadPod(r, &h->n) || !ReadPod(r, &h->d) || !ReadPod(r, &h->bits) ||
      !ReadPod(r, &h->padding) || h->bits < 1 || h->bits > 16 || h->d == 0 ||
      h->d > (1u << 20) || h->padding > (1u << 20)) {
    return Status::IOError(path + ": corrupt LVQ header");
  }
  const size_t raw = LvqDataset::kHeaderBytes +
                     PackedBytes(h->d, static_cast<int>(h->bits));
  h->stride = LvqPaddedStride(raw, h->padding);
  return Status::OK();
}

Result<LvqDataset> LoadLvqFrom(FILE* f, const std::string& path,
                               bool use_huge_pages) {
  LvqHeader h;
  BLINK_RETURN_NOT_OK(ReadLvqHeader(f, &h, path));
  // The payload is d mean floats + n strided rows; a header that implies
  // more than the file holds must fail like any other corruption, not
  // drive the allocations below into OOM.
  const uint64_t remaining = RemainingBytes(f);
  if (h.d * sizeof(float) > remaining || h.n > remaining) {
    return Status::IOError(path + ": LVQ header disagrees with file size");
  }
  std::vector<float> mean(h.d);
  if (!ReadAll(f, mean.data(), h.d * sizeof(float))) {
    return Status::IOError(path + ": truncated LVQ mean");
  }
  if (h.version >= kVersionAligned && !SkipSectionPad(f)) {
    return Status::IOError(path + ": truncated LVQ section padding");
  }
  if (h.n * h.stride > RemainingBytes(f)) {
    return Status::IOError(path + ": LVQ header disagrees with file size");
  }
  std::vector<uint8_t> blob(h.n * h.stride);
  if (!ReadAll(f, blob.data(), blob.size())) {
    return Status::IOError(path + ": truncated LVQ payload");
  }
  return LvqDataset::FromRaw(h.n, h.d, static_cast<int>(h.bits), h.padding,
                             std::move(mean), blob.data(), blob.size(),
                             use_huge_pages);
}

/// Mapped-path twin of LoadLvqFrom: parses the header from the reader and
/// returns a dataset viewing the blob section in place.
Result<LvqDataset> MapLvqFrom(ByteReader* r, const std::string& path) {
  LvqHeader h;
  BLINK_RETURN_NOT_OK(ReadLvqHeader(r, &h, path));
  if (h.version < kVersionAligned) {
    return Status::Unsupported(path +
                               ": map mode requires a v3 aligned artifact");
  }
  std::vector<float> mean(h.d);
  if (!r->ReadBytes(mean.data(), h.d * sizeof(float)) ||
      !r->Align(kSectionAlign) || h.n * h.stride > r->remaining()) {
    return Status::IOError(path + ": LVQ header disagrees with file size");
  }
  const uint8_t* blob = r->cursor();
  if (!r->Advance(h.n * h.stride)) {
    return Status::IOError(path + ": truncated LVQ payload");
  }
  return LvqDataset::FromExternal(h.n, h.d, static_cast<int>(h.bits),
                                  h.padding, std::move(mean), blob);
}

/// Shared (n, d) header + raw row payload of the float32/float16 formats.
Status SaveRawVecs(const std::string& path, uint32_t magic, uint64_t n,
                   uint64_t d, const void* rows, size_t row_bytes) {
  binio::AtomicFile f(path);
  if (!f.ok()) return Status::IOError("cannot open " + path + " for writing");
  if (!WritePod(f.get(), magic) || !WritePod(f.get(), kVersionAligned) ||
      !WritePod(f.get(), n) || !WritePod(f.get(), d) ||
      !WriteSectionPad(f.get()) || !WriteAll(f.get(), rows, n * row_bytes)) {
    return Status::IOError(path + ": vector write failed");
  }
  return f.Commit();
}

Status LoadRawVecs(const std::string& path, uint32_t magic,
                   size_t elem_bytes, uint64_t* n, uint64_t* d,
                   std::vector<uint8_t>* payload) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  uint32_t got = 0, version = 0;
  if (!ReadPod(f.get(), &got) || got != magic) {
    return Status::IOError(path + ": bad vecs magic");
  }
  if (!ReadPod(f.get(), &version) ||
      (version != kVersion && version != kVersionAligned)) {
    return Status::IOError(path + ": unsupported vecs version");
  }
  if (!ReadPod(f.get(), n) || !ReadPod(f.get(), d) || *d == 0 ||
      *d > (1u << 20) || *n > (1ull << 40)) {
    return Status::IOError(path + ": corrupt vecs header");
  }
  if (version >= kVersionAligned && !SkipSectionPad(f.get())) {
    return Status::IOError(path + ": truncated vecs section padding");
  }
  // Bound the allocation by what the file can actually hold (a forged
  // header must fail with a Status, not an OOM).
  if (*n * *d * elem_bytes > RemainingBytes(f.get())) {
    return Status::IOError(path + ": vecs header disagrees with file size");
  }
  payload->resize(*n * *d * elem_bytes);
  if (!ReadAll(f.get(), payload->data(), payload->size())) {
    return Status::IOError(path + ": truncated vecs payload");
  }
  return Status::OK();
}

/// Mapped-path twin of LoadRawVecs: validates the v3 header and returns
/// the in-place row section.
Status MapRawVecs(const MmapFile& map, const std::string& path,
                  uint32_t magic, size_t elem_bytes, uint64_t* n,
                  uint64_t* d, const uint8_t** rows) {
  ByteReader r(map.data(), map.size());
  uint32_t got = 0, version = 0;
  if (!r.Read(&got) || got != magic) {
    return Status::IOError(path + ": bad vecs magic");
  }
  if (!r.Read(&version)) {
    return Status::IOError(path + ": truncated vecs header");
  }
  if (version < kVersionAligned) {
    return Status::Unsupported(path +
                               ": map mode requires a v3 aligned artifact");
  }
  if (version != kVersionAligned || !r.Read(n) || !r.Read(d) || *d == 0 ||
      *d > (1u << 20) || *n > (1ull << 40)) {
    return Status::IOError(path + ": corrupt vecs header");
  }
  if (!r.Align(kSectionAlign) ||
      *n * *d * elem_bytes > r.remaining()) {
    return Status::IOError(path + ": vecs header disagrees with file size");
  }
  *rows = r.cursor();
  return Status::OK();
}

// Reader-polymorphic shims so the LeanVec header/model parsing below is
// written once for the FILE* and mapped paths (cf. the ReadPod shim).
bool ReadBlock(FILE* f, void* out, size_t bytes) {
  return ReadAll(f, out, bytes);
}
bool ReadBlock(ByteReader* r, void* out, size_t bytes) {
  return r->ReadBytes(out, bytes);
}
bool AlignSection(FILE* f) { return SkipSectionPad(f); }
bool AlignSection(ByteReader* r) { return r->Align(kSectionAlign); }
uint64_t SectionRemaining(FILE* f) { return RemainingBytes(f); }
uint64_t SectionRemaining(ByteReader* r) { return r->remaining(); }

/// Header fields shared by the FILE* and mapped BLLV readers, validated
/// identically in both. LeanVec postdates v3, so only aligned files exist.
struct LeanVecHeader {
  uint32_t version = 0, kind = 0;
  uint64_t n = 0, d = 0, dp = 0;
};

template <typename Reader>
Status ReadLeanVecHeader(Reader* r, LeanVecHeader* h,
                         const std::string& path) {
  uint32_t magic = 0;
  if (!ReadPod(r, &magic) || magic != kLeanVecMagic) {
    return Status::IOError(path + ": bad LeanVec magic");
  }
  if (!ReadPod(r, &h->version) || h->version != kVersionAligned) {
    return Status::IOError(path + ": unsupported LeanVec version");
  }
  if (!ReadPod(r, &h->kind) || h->kind > kLeanVecKindLvq ||
      !ReadPod(r, &h->n) || !ReadPod(r, &h->d) || !ReadPod(r, &h->dp) ||
      h->d == 0 || h->d > (1u << 20) || h->dp == 0 || h->dp > h->d ||
      h->n > (1ull << 40)) {
    return Status::IOError(path + ": corrupt LeanVec header");
  }
  return Status::OK();
}

/// Reads the projection model (mean + d x d' matrix) following the header,
/// leaving the cursor aligned at the primary section. The model is always
/// copied — it is tiny and read on every query.
template <typename Reader>
Status ReadLeanVecModel(Reader* r, const LeanVecHeader& h,
                        LeanVecModel* model, const std::string& path) {
  // Bound the model allocation by what the stream can still hold (forged
  // headers fail with a Status, not an OOM).
  if ((h.d + h.d * h.dp) * sizeof(float) > SectionRemaining(r)) {
    return Status::IOError(path + ": LeanVec header disagrees with file size");
  }
  model->mean.resize(h.d);
  if (!ReadBlock(r, model->mean.data(), h.d * sizeof(float)) ||
      !AlignSection(r)) {
    return Status::IOError(path + ": truncated LeanVec mean");
  }
  model->proj = MatrixF(h.d, h.dp);
  if (!ReadBlock(r, model->proj.data(), h.d * h.dp * sizeof(float)) ||
      !AlignSection(r)) {
    return Status::IOError(path + ": truncated LeanVec projection");
  }
  return Status::OK();
}

Status WriteLeanVecHeaderAndModel(FILE* f, uint32_t kind,
                                  const LeanVecModel& model, uint64_t n,
                                  const std::string& path) {
  const uint64_t d = model.dim();
  const uint64_t dp = model.reduced_dim();
  if (!WritePod(f, kLeanVecMagic) || !WritePod(f, kVersionAligned) ||
      !WritePod(f, kind) || !WritePod(f, n) || !WritePod(f, d) ||
      !WritePod(f, dp) ||
      !WriteAll(f, model.mean.data(), d * sizeof(float)) ||
      !WriteSectionPad(f) ||
      !WriteAll(f, model.proj.data(), d * dp * sizeof(float)) ||
      !WriteSectionPad(f)) {
    return Status::IOError(path + ": LeanVec model write failed");
  }
  return Status::OK();
}

/// IndexMeta block reader shared by the FILE* (LoadGraph) and ByteReader
/// (MapGraph) paths — one set of validation bounds for both.
template <typename Reader>
Status ReadIndexMetaT(Reader* f, IndexMeta* meta, const std::string& path) {
  uint32_t metric = 0, two_passes = 0;
  if (!ReadPod(f, &metric) || !ReadPod(f, &meta->params.window_size) ||
      !ReadPod(f, &meta->params.alpha) ||
      !ReadPod(f, &meta->params.max_candidates) ||
      !ReadPod(f, &meta->params.seed) || !ReadPod(f, &two_passes) ||
      two_passes > 1 || meta->params.window_size == 0 ||
      meta->params.window_size > (1u << 20) ||
      !(meta->params.alpha > 0.0f) || meta->params.alpha > 16.0f) {
    return Status::IOError(path + ": corrupt metadata block");
  }
  meta->params.two_passes = two_passes != 0;
  return MetricFromWire(metric, &meta->metric, path);
}

}  // namespace

namespace detail {

Status WriteIndexMeta(std::FILE* f, const IndexMeta& meta,
                      const std::string& path) {
  const uint32_t metric = MetricToWire(meta.metric);
  const uint32_t two_passes = meta.params.two_passes ? 1u : 0u;
  if (!WritePod(f, metric) || !WritePod(f, meta.params.window_size) ||
      !WritePod(f, meta.params.alpha) ||
      !WritePod(f, meta.params.max_candidates) ||
      !WritePod(f, meta.params.seed) || !WritePod(f, two_passes)) {
    return Status::IOError(path + ": metadata write failed");
  }
  return Status::OK();
}

Status ReadIndexMeta(std::FILE* f, IndexMeta* meta, const std::string& path) {
  return ReadIndexMetaT(f, meta, path);
}

}  // namespace detail

Status SaveGraph(const std::string& path, const FlatGraph& graph,
                 uint32_t entry_point, const IndexMeta* meta) {
  binio::AtomicFile f(path);
  if (!f.ok()) return Status::IOError("cannot open " + path + " for writing");
  const uint64_t n = graph.size();
  const uint32_t R = graph.max_degree();
  // With meta the graph is written as v3: self-describing header plus
  // fixed-stride rows a mapping serves in place. Without meta the legacy
  // v1 byte layout is preserved (back-compat fixture generation).
  const uint32_t version = meta != nullptr ? kVersionAligned : kVersion;
  if (!WritePod(f.get(), kGraphMagic) || !WritePod(f.get(), version) ||
      !WritePod(f.get(), n) || !WritePod(f.get(), R) ||
      !WritePod(f.get(), entry_point)) {
    return Status::IOError(path + ": header write failed");
  }
  if (meta != nullptr) {
    BLINK_RETURN_NOT_OK(detail::WriteIndexMeta(f.get(), *meta, path));
    if (!WriteSectionPad(f.get())) {
      return Status::IOError(path + ": section padding write failed");
    }
    // Fixed-stride payload: [deg][R ids] per node, unused tail zeroed —
    // exactly FlatGraph's in-memory row layout.
    std::vector<uint32_t> row(1 + static_cast<size_t>(R));
    for (size_t i = 0; i < n; ++i) {
      const uint32_t deg = graph.degree(i);
      row[0] = deg;
      std::memcpy(row.data() + 1, graph.neighbors(i),
                  deg * sizeof(uint32_t));
      std::fill(row.begin() + 1 + deg, row.end(), 0u);
      if (!WriteAll(f.get(), row.data(), row.size() * sizeof(uint32_t))) {
        return Status::IOError(path + ": adjacency write failed");
      }
    }
    return f.Commit();
  }
  for (size_t i = 0; i < n; ++i) {
    const uint32_t deg = graph.degree(i);
    if (!WritePod(f.get(), deg) ||
        !WriteAll(f.get(), graph.neighbors(i), deg * sizeof(uint32_t))) {
      return Status::IOError(path + ": adjacency write failed");
    }
  }
  return f.Commit();
}

Result<BuiltGraph> LoadGraph(const std::string& path, bool use_huge_pages,
                             IndexMeta* meta, bool* has_meta) {
  if (has_meta != nullptr) *has_meta = false;
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  uint32_t magic = 0, version = 0, R = 0, entry = 0;
  uint64_t n = 0;
  if (!ReadPod(f.get(), &magic) || magic != kGraphMagic) {
    return Status::IOError(path + ": bad graph magic");
  }
  if (!ReadPod(f.get(), &version) ||
      (version != kVersion && version != kVersionMeta &&
       version != kVersionAligned)) {
    return Status::IOError(path + ": unsupported graph version");
  }
  if (!ReadPod(f.get(), &n) || !ReadPod(f.get(), &R) ||
      !ReadPod(f.get(), &entry)) {
    return Status::IOError(path + ": corrupt graph header");
  }
  // Every adjacency row occupies at least its 4-byte degree field, so a
  // header claiming more rows than the file could hold is corrupt — and
  // must fail before n * R sizes the FlatGraph allocation. R gets the
  // dynamic loader's degree bound for the same reason. The entry point
  // must name a stored node — greedy search starts there unchecked.
  if (R == 0 || R > (1u << 20) ||
      n > RemainingBytes(f.get()) / sizeof(uint32_t)) {
    return Status::IOError(path + ": graph header disagrees with file size");
  }
  if (n > 0 && entry >= n) {
    return Status::IOError(path + ": entry point out of range");
  }
  if (version >= kVersionMeta) {
    IndexMeta local;
    BLINK_RETURN_NOT_OK(detail::ReadIndexMeta(f.get(), &local, path));
    local.params.graph_max_degree = R;
    if (meta != nullptr) *meta = local;
    if (has_meta != nullptr) *has_meta = true;
  }
  if (version >= kVersionAligned && !SkipSectionPad(f.get())) {
    return Status::IOError(path + ": truncated graph section padding");
  }
  BuiltGraph out;
  out.graph = FlatGraph(n, R, use_huge_pages);
  out.entry_point = entry;
  if (version >= kVersionAligned) {
    // Fixed-stride payload: each row is (1 + R) u32 regardless of degree.
    std::vector<uint32_t> row(1 + static_cast<size_t>(R));
    for (size_t i = 0; i < n; ++i) {
      if (!ReadAll(f.get(), row.data(), row.size() * sizeof(uint32_t))) {
        return Status::IOError(path + ": truncated adjacency row");
      }
      const uint32_t deg = row[0];
      if (deg > R) return Status::IOError(path + ": corrupt adjacency row");
      for (uint32_t e = 0; e < deg; ++e) {
        if (row[1 + e] >= n) {
          return Status::IOError(path + ": neighbor id out of range");
        }
      }
      out.graph.SetNeighbors(i, row.data() + 1, deg);
    }
    return out;
  }
  std::vector<uint32_t> row(R);
  for (size_t i = 0; i < n; ++i) {
    uint32_t deg = 0;
    if (!ReadPod(f.get(), &deg) || deg > R) {
      return Status::IOError(path + ": corrupt adjacency row");
    }
    if (!ReadAll(f.get(), row.data(), deg * sizeof(uint32_t))) {
      return Status::IOError(path + ": truncated adjacency row");
    }
    for (uint32_t e = 0; e < deg; ++e) {
      if (row[e] >= n) return Status::IOError(path + ": neighbor id out of range");
    }
    out.graph.SetNeighbors(i, row.data(), deg);
  }
  return out;
}

Status SaveLvq(const std::string& path, const LvqDataset& ds) {
  binio::AtomicFile f(path);
  if (!f.ok()) return Status::IOError("cannot open " + path + " for writing");
  BLINK_RETURN_NOT_OK(SaveLvqTo(f.get(), ds, path));
  return f.Commit();
}

Result<LvqDataset> LoadLvq(const std::string& path, bool use_huge_pages) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  return LoadLvqFrom(f.get(), path, use_huge_pages);
}

Status SaveLvq2(const std::string& path, const LvqDataset2& ds) {
  binio::AtomicFile f(path);
  if (!f.ok()) return Status::IOError("cannot open " + path + " for writing");
  const uint32_t bits2 = static_cast<uint32_t>(ds.bits2());
  if (!WritePod(f.get(), kLvq2Magic) || !WritePod(f.get(), kVersionAligned) ||
      !WritePod(f.get(), bits2)) {
    return Status::IOError(path + ": header write failed");
  }
  // The nested level-1 section carries its own v3 pad; a second pad before
  // the residual rows gives them an aligned offset of their own.
  BLINK_RETURN_NOT_OK(SaveLvqTo(f.get(), ds.level1(), path));
  if (!WriteSectionPad(f.get()) ||
      !WriteAll(f.get(), ds.raw_residuals(),
                ds.size() * ds.residual_stride())) {
    return Status::IOError(path + ": residual write failed");
  }
  return f.Commit();
}

Result<LvqDataset2> LoadLvq2(const std::string& path, bool use_huge_pages) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  uint32_t magic = 0, version = 0, bits2 = 0;
  if (!ReadPod(f.get(), &magic) || magic != kLvq2Magic) {
    return Status::IOError(path + ": bad LVQ2 magic");
  }
  if (!ReadPod(f.get(), &version) ||
      (version != kVersion && version != kVersionAligned) ||
      !ReadPod(f.get(), &bits2) || bits2 < 1 || bits2 > 16) {
    return Status::IOError(path + ": corrupt LVQ2 header");
  }
  Result<LvqDataset> level1 = LoadLvqFrom(f.get(), path, use_huge_pages);
  if (!level1.ok()) return level1.status();
  if (version >= kVersionAligned && !SkipSectionPad(f.get())) {
    return Status::IOError(path + ": truncated LVQ2 section padding");
  }
  const size_t n = level1.value().size();
  const size_t stride = PackedBytes(level1.value().dim(), static_cast<int>(bits2));
  std::vector<uint8_t> residuals(n * stride);
  if (!ReadAll(f.get(), residuals.data(), residuals.size())) {
    return Status::IOError(path + ": truncated residuals");
  }
  return LvqDataset2::FromRaw(std::move(level1).value(),
                              static_cast<int>(bits2), residuals.data(),
                              residuals.size(), use_huge_pages);
}

Status SaveFloatVecs(const std::string& path, const FloatStorage& storage) {
  return SaveRawVecs(path, kF32Magic, storage.size(), storage.dim(),
                     storage.size() > 0 ? storage.row(0) : nullptr,
                     storage.dim() * sizeof(float));
}

Result<FloatStorage> LoadFloatVecs(const std::string& path, Metric metric,
                                   bool use_huge_pages) {
  uint64_t n = 0, d = 0;
  std::vector<uint8_t> payload;
  BLINK_RETURN_NOT_OK(LoadRawVecs(path, kF32Magic, sizeof(float), &n, &d,
                                  &payload));
  // One transient payload copy before the arena takes over — the same 2x
  // peak as the LVQ loaders' FromRaw path.
  MatrixViewF view(reinterpret_cast<const float*>(payload.data()), n, d);
  return FloatStorage(view, metric, use_huge_pages);
}

Status SaveF16Vecs(const std::string& path, const F16Storage& storage) {
  return SaveRawVecs(path, kF16Magic, storage.size(), storage.dim(),
                     storage.size() > 0 ? storage.row(0) : nullptr,
                     storage.dim() * sizeof(Float16));
}

Result<F16Storage> LoadF16Vecs(const std::string& path, Metric metric,
                               bool use_huge_pages) {
  uint64_t n = 0, d = 0;
  std::vector<uint8_t> payload;
  BLINK_RETURN_NOT_OK(LoadRawVecs(path, kF16Magic, sizeof(Float16), &n, &d,
                                  &payload));
  return F16Storage(reinterpret_cast<const Float16*>(payload.data()), n, d,
                    metric, use_huge_pages);
}

Status SaveLeanVecVecs(const std::string& path,
                       const LeanVecStorage& storage) {
  binio::AtomicFile f(path);
  if (!f.ok()) return Status::IOError("cannot open " + path + " for writing");
  const uint64_t n = storage.size();
  BLINK_RETURN_NOT_OK(WriteLeanVecHeaderAndModel(f.get(), kLeanVecKindF32,
                                                 storage.model(), n, path));
  const FloatStorage& primary = storage.primary();
  const FloatStorage& secondary = storage.secondary();
  if (!WriteAll(f.get(), n > 0 ? primary.row(0) : nullptr,
                n * primary.dim() * sizeof(float)) ||
      !WriteSectionPad(f.get()) ||
      !WriteAll(f.get(), n > 0 ? secondary.row(0) : nullptr,
                n * secondary.dim() * sizeof(float))) {
    return Status::IOError(path + ": LeanVec payload write failed");
  }
  return f.Commit();
}

Status SaveLeanVecVecs(const std::string& path,
                       const LeanVecLvqStorage& storage) {
  binio::AtomicFile f(path);
  if (!f.ok()) return Status::IOError("cannot open " + path + " for writing");
  BLINK_RETURN_NOT_OK(WriteLeanVecHeaderAndModel(
      f.get(), kLeanVecKindLvq, storage.model(), storage.size(), path));
  // Each nested LVQ section carries its own v3 pad before its blob; the
  // extra pad between them gives the secondary header an aligned offset
  // (cf. SaveLvq2's residual section).
  BLINK_RETURN_NOT_OK(SaveLvqTo(f.get(), storage.primary().level1(), path));
  if (!WriteSectionPad(f.get())) {
    return Status::IOError(path + ": section padding write failed");
  }
  BLINK_RETURN_NOT_OK(SaveLvqTo(f.get(), storage.secondary().level1(), path));
  return f.Commit();
}

Result<LeanVecStorage> LoadLeanVecVecs(const std::string& path, Metric metric,
                                       bool use_huge_pages) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  LeanVecHeader h;
  BLINK_RETURN_NOT_OK(ReadLeanVecHeader(f.get(), &h, path));
  if (h.kind != kLeanVecKindF32) {
    return Status::InvalidArgument(path + ": not a float32 LeanVec payload");
  }
  LeanVecModel model;
  BLINK_RETURN_NOT_OK(ReadLeanVecModel(f.get(), h, &model, path));
  if (h.n * h.dp * sizeof(float) > RemainingBytes(f.get())) {
    return Status::IOError(path + ": LeanVec header disagrees with file size");
  }
  std::vector<float> primary_rows(h.n * h.dp);
  if (!ReadAll(f.get(), primary_rows.data(),
               primary_rows.size() * sizeof(float)) ||
      !SkipSectionPad(f.get())) {
    return Status::IOError(path + ": truncated LeanVec primary rows");
  }
  if (h.n * h.d * sizeof(float) > RemainingBytes(f.get())) {
    return Status::IOError(path + ": LeanVec header disagrees with file size");
  }
  std::vector<float> secondary_rows(h.n * h.d);
  if (!ReadAll(f.get(), secondary_rows.data(),
               secondary_rows.size() * sizeof(float))) {
    return Status::IOError(path + ": truncated LeanVec secondary rows");
  }
  FloatStorage primary(MatrixViewF(primary_rows.data(), h.n, h.dp), metric,
                       use_huge_pages);
  FloatStorage secondary(MatrixViewF(secondary_rows.data(), h.n, h.d), metric,
                         use_huge_pages);
  return LeanVecStorage(std::move(model), std::move(primary),
                        std::move(secondary));
}

Result<LeanVecLvqStorage> LoadLeanVecLvqVecs(const std::string& path,
                                             Metric metric,
                                             bool use_huge_pages) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  LeanVecHeader h;
  BLINK_RETURN_NOT_OK(ReadLeanVecHeader(f.get(), &h, path));
  if (h.kind != kLeanVecKindLvq) {
    return Status::InvalidArgument(path + ": not an LVQ LeanVec payload");
  }
  LeanVecModel model;
  BLINK_RETURN_NOT_OK(ReadLeanVecModel(f.get(), h, &model, path));
  Result<LvqDataset> primary = LoadLvqFrom(f.get(), path, use_huge_pages);
  if (!primary.ok()) return primary.status();
  if (!SkipSectionPad(f.get())) {
    return Status::IOError(path + ": truncated LeanVec section padding");
  }
  Result<LvqDataset> secondary = LoadLvqFrom(f.get(), path, use_huge_pages);
  if (!secondary.ok()) return secondary.status();
  if (primary.value().size() != h.n || primary.value().dim() != h.dp ||
      secondary.value().size() != h.n || secondary.value().dim() != h.d) {
    return Status::IOError(path + ": LeanVec sections disagree with header");
  }
  return LeanVecLvqStorage(std::move(model),
                           LvqStorage(std::move(primary).value(), metric),
                           LvqStorage(std::move(secondary).value(), metric));
}

Result<VecsEncoding> PeekVecsEncoding(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  uint32_t magic = 0;
  if (!ReadPod(f.get(), &magic)) {
    return Status::IOError(path + ": truncated vecs file");
  }
  if (magic == kLeanVecMagic) {
    uint32_t version = 0, kind = 0;
    if (!ReadPod(f.get(), &version) || !ReadPod(f.get(), &kind) ||
        kind > kLeanVecKindLvq) {
      return Status::IOError(path + ": corrupt LeanVec header");
    }
    return kind == kLeanVecKindLvq ? VecsEncoding::kLeanVecLvq
                                   : VecsEncoding::kLeanVecF32;
  }
  switch (magic) {
    case kLvqMagic: return VecsEncoding::kLvq1;
    case kLvq2Magic: return VecsEncoding::kLvq2;
    case kF32Magic: return VecsEncoding::kFloat32;
    case kF16Magic: return VecsEncoding::kFloat16;
    default: return Status::IOError(path + ": unrecognized vecs magic");
  }
}

// ---------------------------------------------------------------------------
// Map-mode loaders: parse headers from an established mapping and return
// graphs/storages viewing the payload sections in place (serialize.h has
// the validation policy).
// ---------------------------------------------------------------------------

bool IsMappableArtifact(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  uint32_t magic = 0, version = 0;
  if (!ReadPod(f.get(), &magic) || !ReadPod(f.get(), &version)) return false;
  switch (magic) {
    case kGraphMagic:
    case kLvqMagic:
    case kLvq2Magic:
    case kF32Magic:
    case kF16Magic:
    case kLeanVecMagic:
      return version >= kVersionAligned;
    default:
      return false;
  }
}

Result<BuiltGraph> MapGraph(const MmapFile& map, const std::string& path,
                            IndexMeta* meta, bool* has_meta) {
  if (has_meta != nullptr) *has_meta = false;
  ByteReader r(map.data(), map.size());
  uint32_t magic = 0, version = 0, R = 0, entry = 0;
  uint64_t n = 0;
  if (!r.Read(&magic) || magic != kGraphMagic) {
    return Status::IOError(path + ": bad graph magic");
  }
  if (!r.Read(&version)) {
    return Status::IOError(path + ": corrupt graph header");
  }
  if (version < kVersionAligned) {
    return Status::Unsupported(path +
                               ": map mode requires a v3 aligned artifact");
  }
  if (version != kVersionAligned || !r.Read(&n) || !r.Read(&R) ||
      !r.Read(&entry) || R == 0 || R > (1u << 20)) {
    return Status::IOError(path + ": corrupt graph header");
  }
  if (n > 0 && entry >= n) {
    return Status::IOError(path + ": entry point out of range");
  }
  // v3 graphs always carry the meta block (SaveGraph writes v1 otherwise).
  IndexMeta local;
  BLINK_RETURN_NOT_OK(ReadIndexMetaT(&r, &local, path));
  local.params.graph_max_degree = R;
  if (meta != nullptr) *meta = local;
  if (has_meta != nullptr) *has_meta = true;
  const size_t row_entries = 1 + static_cast<size_t>(R);
  if (!r.Align(kSectionAlign) ||
      n > r.remaining() / (row_entries * sizeof(uint32_t))) {
    return Status::IOError(path + ": graph header disagrees with file size");
  }
  const uint32_t* rows = reinterpret_cast<const uint32_t*>(r.cursor());
  // Eager validation: adjacency ids index the vector payload unchecked at
  // search time, and the graph is the small section — touch all of it now
  // so a corrupt row can never become an out-of-bounds read mid-query.
  for (size_t i = 0; i < n; ++i) {
    const uint32_t* row = rows + i * row_entries;
    const uint32_t deg = row[0];
    if (deg > R) return Status::IOError(path + ": corrupt adjacency row");
    for (uint32_t e = 0; e < deg; ++e) {
      if (row[1 + e] >= n) {
        return Status::IOError(path + ": neighbor id out of range");
      }
    }
  }
  BuiltGraph out;
  out.graph = FlatGraph(rows, n, R);
  out.entry_point = entry;
  return out;
}

Result<LvqDataset> MapLvq(const MmapFile& map, const std::string& path) {
  ByteReader r(map.data(), map.size());
  return MapLvqFrom(&r, path);
}

Result<LvqDataset2> MapLvq2(const MmapFile& map, const std::string& path) {
  ByteReader r(map.data(), map.size());
  uint32_t magic = 0, version = 0, bits2 = 0;
  if (!r.Read(&magic) || magic != kLvq2Magic) {
    return Status::IOError(path + ": bad LVQ2 magic");
  }
  if (!r.Read(&version)) {
    return Status::IOError(path + ": corrupt LVQ2 header");
  }
  if (version < kVersionAligned) {
    return Status::Unsupported(path +
                               ": map mode requires a v3 aligned artifact");
  }
  if (version != kVersionAligned || !r.Read(&bits2) || bits2 < 1 ||
      bits2 > 16) {
    return Status::IOError(path + ": corrupt LVQ2 header");
  }
  Result<LvqDataset> level1 = MapLvqFrom(&r, path);
  if (!level1.ok()) return level1.status();
  const size_t n = level1.value().size();
  const size_t stride =
      PackedBytes(level1.value().dim(), static_cast<int>(bits2));
  if (!r.Align(kSectionAlign) || n * stride > r.remaining()) {
    return Status::IOError(path + ": LVQ2 header disagrees with file size");
  }
  return LvqDataset2::FromExternal(std::move(level1).value(),
                                   static_cast<int>(bits2), r.cursor());
}

Result<FloatStorage> MapFloatVecs(const MmapFile& map,
                                  const std::string& path, Metric metric) {
  uint64_t n = 0, d = 0;
  const uint8_t* rows = nullptr;
  BLINK_RETURN_NOT_OK(
      MapRawVecs(map, path, kF32Magic, sizeof(float), &n, &d, &rows));
  return FloatStorage::FromExternal(reinterpret_cast<const float*>(rows), n,
                                    d, metric);
}

Result<F16Storage> MapF16Vecs(const MmapFile& map, const std::string& path,
                              Metric metric) {
  uint64_t n = 0, d = 0;
  const uint8_t* rows = nullptr;
  BLINK_RETURN_NOT_OK(
      MapRawVecs(map, path, kF16Magic, sizeof(Float16), &n, &d, &rows));
  return F16Storage::FromExternal(reinterpret_cast<const Float16*>(rows), n,
                                  d, metric);
}

Result<LeanVecStorage> MapLeanVecVecs(const MmapFile& map,
                                      const std::string& path,
                                      Metric metric) {
  ByteReader r(map.data(), map.size());
  LeanVecHeader h;
  BLINK_RETURN_NOT_OK(ReadLeanVecHeader(&r, &h, path));
  if (h.kind != kLeanVecKindF32) {
    return Status::InvalidArgument(path + ": not a float32 LeanVec payload");
  }
  LeanVecModel model;
  BLINK_RETURN_NOT_OK(ReadLeanVecModel(&r, h, &model, path));
  if (h.n * h.dp * sizeof(float) > r.remaining()) {
    return Status::IOError(path + ": LeanVec header disagrees with file size");
  }
  const float* primary_rows = reinterpret_cast<const float*>(r.cursor());
  if (!r.Advance(h.n * h.dp * sizeof(float)) || !r.Align(kSectionAlign) ||
      h.n * h.d * sizeof(float) > r.remaining()) {
    return Status::IOError(path + ": LeanVec header disagrees with file size");
  }
  const float* secondary_rows = reinterpret_cast<const float*>(r.cursor());
  return LeanVecStorage(
      std::move(model),
      FloatStorage::FromExternal(primary_rows, h.n, h.dp, metric),
      FloatStorage::FromExternal(secondary_rows, h.n, h.d, metric));
}

Result<LeanVecLvqStorage> MapLeanVecLvqVecs(const MmapFile& map,
                                            const std::string& path,
                                            Metric metric) {
  ByteReader r(map.data(), map.size());
  LeanVecHeader h;
  BLINK_RETURN_NOT_OK(ReadLeanVecHeader(&r, &h, path));
  if (h.kind != kLeanVecKindLvq) {
    return Status::InvalidArgument(path + ": not an LVQ LeanVec payload");
  }
  LeanVecModel model;
  BLINK_RETURN_NOT_OK(ReadLeanVecModel(&r, h, &model, path));
  Result<LvqDataset> primary = MapLvqFrom(&r, path);
  if (!primary.ok()) return primary.status();
  if (!r.Align(kSectionAlign)) {
    return Status::IOError(path + ": truncated LeanVec section padding");
  }
  Result<LvqDataset> secondary = MapLvqFrom(&r, path);
  if (!secondary.ok()) return secondary.status();
  if (primary.value().size() != h.n || primary.value().dim() != h.dp ||
      secondary.value().size() != h.n || secondary.value().dim() != h.d) {
    return Status::IOError(path + ": LeanVec sections disagree with header");
  }
  return LeanVecLvqStorage(std::move(model),
                           LvqStorage(std::move(primary).value(), metric),
                           LvqStorage(std::move(secondary).value(), metric));
}

// ---------------------------------------------------------------------------
// Dynamic index bundles ("BLDY"): one file holding the storage rows, the
// tombstone flags, the free-slot list (recycling order is state — it
// determines the ids future inserts receive) and the adjacency rows.
// Version 2 extends the header with metric/alpha/build_window so the file
// reloads without caller configuration.
// ---------------------------------------------------------------------------

namespace {

struct DynHeader {
  uint32_t kind = 0;
  uint64_t dim = 0;
  uint64_t n = 0;
  uint64_t num_deleted = 0;
  uint32_t entry = 0;
  uint32_t max_degree = 0;
  // Version-2 fields.
  bool has_meta = false;
  Metric metric = Metric::kL2;
  float alpha = 1.2f;
  uint32_t build_window = 64;
};

Status WriteDynHeader(FILE* f, const DynHeader& h, const std::string& path) {
  if (!WritePod(f, kDynMagic) || !WritePod(f, kVersionMeta) ||
      !WritePod(f, h.kind) || !WritePod(f, h.dim) || !WritePod(f, h.n) ||
      !WritePod(f, h.num_deleted) || !WritePod(f, h.entry) ||
      !WritePod(f, h.max_degree) || !WritePod(f, MetricToWire(h.metric)) ||
      !WritePod(f, h.alpha) || !WritePod(f, h.build_window)) {
    return Status::IOError(path + ": dynamic header write failed");
  }
  return Status::OK();
}

Result<DynHeader> ReadDynHeader(FILE* f, const std::string& path) {
  uint32_t magic = 0, version = 0;
  DynHeader h;
  if (!ReadPod(f, &magic) || magic != kDynMagic) {
    return Status::IOError(path + ": bad dynamic-index magic");
  }
  if (!ReadPod(f, &version) ||
      (version != kVersion && version != kVersionMeta)) {
    return Status::IOError(path + ": unsupported dynamic-index version");
  }
  // Sanity bounds keep a corrupt header from driving the size arithmetic
  // below into overflow or absurd allocations (cf. the MakeAligned guard).
  constexpr uint64_t kMaxDim = 1u << 20;
  constexpr uint64_t kMaxDegree = 1u << 20;
  if (!ReadPod(f, &h.kind) || !ReadPod(f, &h.dim) || !ReadPod(f, &h.n) ||
      !ReadPod(f, &h.num_deleted) || !ReadPod(f, &h.entry) ||
      !ReadPod(f, &h.max_degree) || h.dim == 0 || h.dim > kMaxDim ||
      h.max_degree == 0 || h.max_degree > kMaxDegree ||
      h.num_deleted > h.n || h.n > (1ull << 40)) {
    return Status::IOError(path + ": corrupt dynamic-index header");
  }
  if (version == kVersionMeta) {
    uint32_t metric = 0;
    if (!ReadPod(f, &metric) || !ReadPod(f, &h.alpha) ||
        !ReadPod(f, &h.build_window) || !(h.alpha > 0.0f) ||
        h.alpha > 16.0f || h.build_window == 0 ||
        h.build_window > (1u << 20)) {
      return Status::IOError(path + ": corrupt dynamic-index metadata");
    }
    BLINK_RETURN_NOT_OK(MetricFromWire(metric, &h.metric, path));
    h.has_meta = true;
  }
  if (h.entry != DynamicIndex::kNoEntry && h.entry >= h.n) {
    return Status::IOError(path + ": entry point out of range");
  }
  return h;
}

/// The state shared by both storage kinds, written after the payload.
template <typename Index>
Status WriteDynState(FILE* f, const Index& index, size_t n,
                     const std::string& path) {
  if (!WriteAll(f, index.deleted_flags().data(), n)) {
    return Status::IOError(path + ": tombstone-flag write failed");
  }
  const uint64_t free_count = index.free_slots().size();
  if (!WritePod(f, free_count) ||
      !WriteAll(f, index.free_slots().data(),
                free_count * sizeof(uint32_t))) {
    return Status::IOError(path + ": free-slot write failed");
  }
  for (size_t i = 0; i < n; ++i) {
    const uint32_t deg = index.graph().degree(i);
    if (!WritePod(f, deg) ||
        !WriteAll(f, index.graph().neighbors(i), deg * sizeof(uint32_t))) {
      return Status::IOError(path + ": adjacency write failed");
    }
  }
  return Status::OK();
}

Status ReadDynState(FILE* f, const DynHeader& h, size_t capacity,
                    FlatGraph* graph, std::vector<uint8_t>* deleted,
                    std::vector<uint32_t>* free_slots,
                    const std::string& path) {
  const size_t n = h.n;
  deleted->assign(n, 0);
  if (!ReadAll(f, deleted->data(), n)) {
    return Status::IOError(path + ": truncated tombstone flags");
  }
  // Flags are the dynamic index's slot states: 0 live, 1 tombstoned
  // (navigable), 2 purged (queued for recycling). Their total must match
  // the header's deleted count.
  size_t flagged = 0;
  for (uint8_t flag : *deleted) {
    if (flag > 2) return Status::IOError(path + ": corrupt tombstone flag");
    if (flag != 0) ++flagged;
  }
  if (flagged != h.num_deleted) {
    return Status::IOError(path + ": tombstone flags disagree with header");
  }
  uint64_t free_count = 0;
  if (!ReadPod(f, &free_count) || free_count > n) {
    return Status::IOError(path + ": corrupt free-slot count");
  }
  free_slots->resize(free_count);
  if (!ReadAll(f, free_slots->data(), free_count * sizeof(uint32_t))) {
    return Status::IOError(path + ": truncated free-slot list");
  }
  for (uint32_t s : *free_slots) {
    // Exactly the purged slots are queued for reuse (graph/dynamic.cc).
    if (s >= n || (*deleted)[s] != 2) {
      return Status::IOError(path + ": corrupt free-slot list");
    }
  }
  *graph = FlatGraph(capacity, h.max_degree, /*use_huge_pages=*/false);
  std::vector<uint32_t> row(h.max_degree);
  for (size_t i = 0; i < n; ++i) {
    uint32_t deg = 0;
    if (!ReadPod(f, &deg) || deg > h.max_degree) {
      return Status::IOError(path + ": corrupt adjacency row");
    }
    if (!ReadAll(f, row.data(), deg * sizeof(uint32_t))) {
      return Status::IOError(path + ": truncated adjacency row");
    }
    for (uint32_t e = 0; e < deg; ++e) {
      if (row[e] >= n) {
        return Status::IOError(path + ": neighbor id out of range");
      }
    }
    graph->SetNeighbors(i, row.data(), deg);
  }
  return Status::OK();
}

/// Capacity a restored index is provisioned with: at least the saved rows,
/// the caller's requested floor, and the constructor's minimum.
size_t RestoredCapacity(const DynHeader& h, const DynamicOptions& opts) {
  return std::max<size_t>(std::max<size_t>(h.n, opts.initial_capacity), 16);
}

/// Version-2 headers override the caller's configuration: the artifact is
/// the single source of truth for metric / alpha / build window.
void ApplyDynMeta(const DynHeader& h, DynamicOptions* opts) {
  opts->graph_max_degree = h.max_degree;
  if (h.has_meta) {
    opts->metric = h.metric;
    opts->alpha = h.alpha;
    opts->build_window = h.build_window;
  }
}

}  // namespace

bool IsDynamicIndexFile(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  uint32_t magic = 0;
  return ReadPod(f.get(), &magic) && magic == kDynMagic;
}

Result<DynamicKind> PeekDynamicKind(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  Result<DynHeader> header = ReadDynHeader(f.get(), path);
  if (!header.ok()) return header.status();
  return header.value().kind == kDynKindLvq ? DynamicKind::kLvq
                                            : DynamicKind::kF32;
}

Status SaveDynamic(const std::string& path, const DynamicIndex& index) {
  binio::AtomicFile f(path);
  if (!f.ok()) return Status::IOError("cannot open " + path + " for writing");
  DynHeader h;
  h.kind = kDynKindF32;
  h.dim = index.dim();
  h.n = index.size();
  h.num_deleted = index.num_deleted();
  h.entry = index.entry_point();
  h.max_degree = index.max_degree();
  h.metric = index.options().metric;
  h.alpha = index.options().alpha;
  h.build_window = index.options().build_window;
  BLINK_RETURN_NOT_OK(WriteDynHeader(f.get(), h, path));
  if (!WriteAll(f.get(), index.storage().raw_rows(),
                h.n * h.dim * sizeof(float))) {
    return Status::IOError(path + ": vector write failed");
  }
  BLINK_RETURN_NOT_OK(WriteDynState(f.get(), index, h.n, path));
  return f.Commit();
}

Status SaveDynamic(const std::string& path, const DynamicLvqIndex& index) {
  binio::AtomicFile f(path);
  if (!f.ok()) return Status::IOError("cannot open " + path + " for writing");
  const DynamicLvqDataset& ds = index.storage().dataset();
  DynHeader h;
  h.kind = kDynKindLvq;
  h.dim = index.dim();
  h.n = index.size();
  h.num_deleted = index.num_deleted();
  h.entry = index.entry_point();
  h.max_degree = index.max_degree();
  h.metric = index.options().metric;
  h.alpha = index.options().alpha;
  h.build_window = index.options().build_window;
  BLINK_RETURN_NOT_OK(WriteDynHeader(f.get(), h, path));
  const uint32_t bits1 = static_cast<uint32_t>(ds.bits1());
  const uint32_t bits2 = static_cast<uint32_t>(ds.bits2());
  const uint64_t padding = ds.padding();
  if (!WritePod(f.get(), bits1) || !WritePod(f.get(), bits2) ||
      !WritePod(f.get(), padding) ||
      !WriteAll(f.get(), ds.mean().data(), h.dim * sizeof(float)) ||
      !WriteAll(f.get(), ds.raw_blob(), h.n * ds.stride()) ||
      !WriteAll(f.get(), ds.raw_residuals(), h.n * ds.residual_stride())) {
    return Status::IOError(path + ": LVQ payload write failed");
  }
  BLINK_RETURN_NOT_OK(WriteDynState(f.get(), index, h.n, path));
  return f.Commit();
}

Result<std::unique_ptr<DynamicIndex>> LoadDynamicF32(const std::string& path,
                                                     DynamicOptions opts,
                                                     bool* self_described) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  Result<DynHeader> header = ReadDynHeader(f.get(), path);
  if (!header.ok()) return header.status();
  const DynHeader h = header.value();
  if (h.kind != kDynKindF32) {
    return Status::InvalidArgument(path + ": not a float32 dynamic index");
  }
  ApplyDynMeta(h, &opts);
  if (self_described != nullptr) *self_described = h.has_meta;
  // Rows + per-slot state must fit in the file before h.n sizes any
  // allocation (forged headers fail with a Status, not an OOM).
  if (h.n * h.dim * sizeof(float) > RemainingBytes(f.get())) {
    return Status::IOError(path + ": dynamic header disagrees with file size");
  }
  const size_t capacity = RestoredCapacity(h, opts);
  DynamicFloatStorage storage(h.dim, opts.metric);
  storage.Grow(capacity);
  std::vector<float> rows(h.n * h.dim);
  if (!ReadAll(f.get(), rows.data(), rows.size() * sizeof(float))) {
    return Status::IOError(path + ": truncated vectors");
  }
  storage.RestoreRows(rows.data(), h.n);
  FlatGraph graph;
  std::vector<uint8_t> deleted;
  std::vector<uint32_t> free_slots;
  BLINK_RETURN_NOT_OK(
      ReadDynState(f.get(), h, capacity, &graph, &deleted, &free_slots, path));
  return DynamicIndex::Restore(h.dim, opts, std::move(storage),
                               std::move(graph), std::move(deleted),
                               std::move(free_slots), h.n, h.num_deleted,
                               h.entry);
}

Result<std::unique_ptr<DynamicLvqIndex>> LoadDynamicLvq(
    const std::string& path, DynamicOptions opts, bool* self_described) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  Result<DynHeader> header = ReadDynHeader(f.get(), path);
  if (!header.ok()) return header.status();
  const DynHeader h = header.value();
  if (h.kind != kDynKindLvq) {
    return Status::InvalidArgument(path + ": not an LVQ dynamic index");
  }
  ApplyDynMeta(h, &opts);
  if (self_described != nullptr) *self_described = h.has_meta;
  uint32_t bits1 = 0, bits2 = 0;
  uint64_t padding = 0;
  if (!ReadPod(f.get(), &bits1) || !ReadPod(f.get(), &bits2) ||
      !ReadPod(f.get(), &padding) || bits1 < 1 || bits1 > 16 || bits2 > 16 ||
      padding > (1u << 20)) {  // bounded so the stride can't overflow
    return Status::IOError(path + ": corrupt LVQ dynamic header");
  }
  DynamicLvqDataset::Options lvq_opts;
  lvq_opts.bits1 = static_cast<int>(bits1);
  lvq_opts.bits2 = static_cast<int>(bits2);
  lvq_opts.padding = padding;
  lvq_opts.mean.resize(h.dim);
  if (!ReadAll(f.get(), lvq_opts.mean.data(), h.dim * sizeof(float))) {
    return Status::IOError(path + ": truncated mean");
  }
  DynamicLvqStorage storage(h.dim, opts.metric, std::move(lvq_opts));
  const DynamicLvqDataset& ds = storage.dataset();
  // Same forged-header allocation bound as the float32 path, checked
  // before Grow() sizes the arena from h.n.
  if (h.n * ds.stride() > RemainingBytes(f.get())) {
    return Status::IOError(path + ": dynamic header disagrees with file size");
  }
  const size_t capacity = RestoredCapacity(h, opts);
  storage.Grow(capacity);
  std::vector<uint8_t> blob(h.n * ds.stride());
  std::vector<uint8_t> residuals(h.n * ds.residual_stride());
  if (!ReadAll(f.get(), blob.data(), blob.size()) ||
      !ReadAll(f.get(), residuals.data(), residuals.size())) {
    return Status::IOError(path + ": truncated LVQ payload");
  }
  storage.dataset().RestoreRows(blob.data(), residuals.data(), h.n);
  FlatGraph graph;
  std::vector<uint8_t> deleted;
  std::vector<uint32_t> free_slots;
  BLINK_RETURN_NOT_OK(
      ReadDynState(f.get(), h, capacity, &graph, &deleted, &free_slots, path));
  return DynamicLvqIndex::Restore(h.dim, opts, std::move(storage),
                                  std::move(graph), std::move(deleted),
                                  std::move(free_slots), h.n, h.num_deleted,
                                  h.entry);
}

// ---------------------------------------------------------------------------
// Static index bundles: <prefix>.graph (version 2, self-describing) +
// <prefix>.vecs in the storage's native payload format.
// ---------------------------------------------------------------------------

Status SaveIndexBundle(const std::string& prefix,
                       const VamanaIndex<LvqStorage>& index) {
  if (index.storage().has_second_level()) {
    BLINK_RETURN_NOT_OK(SaveLvq2(prefix + ".vecs", *index.storage().level2()));
  } else {
    BLINK_RETURN_NOT_OK(SaveLvq(prefix + ".vecs", index.storage().level1()));
  }
  const IndexMeta meta{index.storage().metric(), index.build_params()};
  return SaveGraph(prefix + ".graph", index.graph(), index.entry_point(),
                   &meta);
}

Status SaveIndexBundle(const std::string& prefix,
                       const VamanaIndex<FloatStorage>& index) {
  BLINK_RETURN_NOT_OK(SaveFloatVecs(prefix + ".vecs", index.storage()));
  const IndexMeta meta{index.storage().metric(), index.build_params()};
  return SaveGraph(prefix + ".graph", index.graph(), index.entry_point(),
                   &meta);
}

Status SaveIndexBundle(const std::string& prefix,
                       const VamanaIndex<F16Storage>& index) {
  BLINK_RETURN_NOT_OK(SaveF16Vecs(prefix + ".vecs", index.storage()));
  const IndexMeta meta{index.storage().metric(), index.build_params()};
  return SaveGraph(prefix + ".graph", index.graph(), index.entry_point(),
                   &meta);
}

Status SaveIndexBundle(const std::string& prefix,
                       const VamanaIndex<LeanVecStorage>& index) {
  BLINK_RETURN_NOT_OK(SaveLeanVecVecs(prefix + ".vecs", index.storage()));
  const IndexMeta meta{index.storage().metric(), index.build_params()};
  return SaveGraph(prefix + ".graph", index.graph(), index.entry_point(),
                   &meta);
}

Status SaveIndexBundle(const std::string& prefix,
                       const VamanaIndex<LeanVecLvqStorage>& index) {
  BLINK_RETURN_NOT_OK(SaveLeanVecVecs(prefix + ".vecs", index.storage()));
  const IndexMeta meta{index.storage().metric(), index.build_params()};
  return SaveGraph(prefix + ".graph", index.graph(), index.entry_point(),
                   &meta);
}

Status SaveOgLvqIndex(const std::string& prefix,
                      const VamanaIndex<LvqStorage>& index) {
  return SaveIndexBundle(prefix, index);
}

Result<std::unique_ptr<VamanaIndex<LvqStorage>>> LoadOgLvqIndex(
    const std::string& prefix, Metric metric, const VamanaBuildParams& bp,
    bool use_huge_pages) {
  IndexMeta meta;
  bool has_meta = false;
  Result<BuiltGraph> graph =
      LoadGraph(prefix + ".graph", use_huge_pages, &meta, &has_meta);
  if (!graph.ok()) return graph.status();
  // A version-2 graph header carries the build-time configuration; the
  // caller's values are only the fallback for version-1 artifacts. Either
  // way the on-disk graph knows its own degree — don't let the caller's
  // defaults misreport it (e.g. in name()).
  VamanaBuildParams actual = has_meta ? meta.params : bp;
  actual.graph_max_degree = graph.value().graph.max_degree();
  const Metric actual_metric = has_meta ? meta.metric : metric;
  // Try two-level first, fall back to one-level.
  Result<LvqDataset2> two = LoadLvq2(prefix + ".vecs", use_huge_pages);
  if (two.ok()) {
    LvqStorage storage(std::move(two).value(), actual_metric);
    return std::make_unique<VamanaIndex<LvqStorage>>(
        std::move(storage), std::move(graph).value(), actual);
  }
  Result<LvqDataset> one = LoadLvq(prefix + ".vecs", use_huge_pages);
  if (!one.ok()) return one.status();
  LvqStorage storage(std::move(one).value(), actual_metric);
  return std::make_unique<VamanaIndex<LvqStorage>>(
      std::move(storage), std::move(graph).value(), actual);
}

}  // namespace blink
