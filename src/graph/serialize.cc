#include "graph/serialize.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "util/binio.h"

namespace blink {

namespace {

using binio::File;
using binio::ReadAll;
using binio::ReadPod;
using binio::WriteAll;
using binio::WritePod;

constexpr uint32_t kGraphMagic = 0x47414C42u;  // "BLAG"
constexpr uint32_t kLvqMagic = 0x51414C42u;    // "BLAQ"
constexpr uint32_t kLvq2Magic = 0x32414C42u;   // "BLA2"
constexpr uint32_t kVersion = 1;

Status SaveLvqTo(FILE* f, const LvqDataset& ds, const std::string& path) {
  const uint64_t n = ds.size(), d = ds.dim();
  const uint32_t bits = static_cast<uint32_t>(ds.bits());
  const uint64_t padding = ds.padding();
  if (!WritePod(f, kLvqMagic) || !WritePod(f, kVersion) || !WritePod(f, n) ||
      !WritePod(f, d) || !WritePod(f, bits) || !WritePod(f, padding) ||
      !WriteAll(f, ds.mean().data(), d * sizeof(float)) ||
      !WriteAll(f, ds.raw_blob(), n * ds.vector_footprint())) {
    return Status::IOError(path + ": LVQ write failed");
  }
  return Status::OK();
}

Result<LvqDataset> LoadLvqFrom(FILE* f, const std::string& path,
                               bool use_huge_pages) {
  uint32_t magic = 0, version = 0, bits = 0;
  uint64_t n = 0, d = 0, padding = 0;
  if (!ReadPod(f, &magic) || magic != kLvqMagic) {
    return Status::IOError(path + ": bad LVQ magic");
  }
  if (!ReadPod(f, &version) || version != kVersion) {
    return Status::IOError(path + ": unsupported LVQ version");
  }
  if (!ReadPod(f, &n) || !ReadPod(f, &d) || !ReadPod(f, &bits) ||
      !ReadPod(f, &padding) || bits < 1 || bits > 16) {
    return Status::IOError(path + ": corrupt LVQ header");
  }
  std::vector<float> mean(d);
  if (!ReadAll(f, mean.data(), d * sizeof(float))) {
    return Status::IOError(path + ": truncated LVQ mean");
  }
  const size_t raw =
      LvqDataset::kHeaderBytes + PackedBytes(d, static_cast<int>(bits));
  const size_t stride = padding == 0 ? raw : (raw + padding - 1) / padding * padding;
  std::vector<uint8_t> blob(n * stride);
  if (!ReadAll(f, blob.data(), blob.size())) {
    return Status::IOError(path + ": truncated LVQ payload");
  }
  return LvqDataset::FromRaw(n, d, static_cast<int>(bits), padding,
                             std::move(mean), blob.data(), blob.size(),
                             use_huge_pages);
}

}  // namespace

Status SaveGraph(const std::string& path, const FlatGraph& graph,
                 uint32_t entry_point) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  const uint64_t n = graph.size();
  const uint32_t R = graph.max_degree();
  if (!WritePod(f.get(), kGraphMagic) || !WritePod(f.get(), kVersion) ||
      !WritePod(f.get(), n) || !WritePod(f.get(), R) ||
      !WritePod(f.get(), entry_point)) {
    return Status::IOError(path + ": header write failed");
  }
  for (size_t i = 0; i < n; ++i) {
    const uint32_t deg = graph.degree(i);
    if (!WritePod(f.get(), deg) ||
        !WriteAll(f.get(), graph.neighbors(i), deg * sizeof(uint32_t))) {
      return Status::IOError(path + ": adjacency write failed");
    }
  }
  return Status::OK();
}

Result<BuiltGraph> LoadGraph(const std::string& path, bool use_huge_pages) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  uint32_t magic = 0, version = 0, R = 0, entry = 0;
  uint64_t n = 0;
  if (!ReadPod(f.get(), &magic) || magic != kGraphMagic) {
    return Status::IOError(path + ": bad graph magic");
  }
  if (!ReadPod(f.get(), &version) || version != kVersion) {
    return Status::IOError(path + ": unsupported graph version");
  }
  if (!ReadPod(f.get(), &n) || !ReadPod(f.get(), &R) ||
      !ReadPod(f.get(), &entry)) {
    return Status::IOError(path + ": corrupt graph header");
  }
  BuiltGraph out;
  out.graph = FlatGraph(n, R, use_huge_pages);
  out.entry_point = entry;
  std::vector<uint32_t> row(R);
  for (size_t i = 0; i < n; ++i) {
    uint32_t deg = 0;
    if (!ReadPod(f.get(), &deg) || deg > R) {
      return Status::IOError(path + ": corrupt adjacency row");
    }
    if (!ReadAll(f.get(), row.data(), deg * sizeof(uint32_t))) {
      return Status::IOError(path + ": truncated adjacency row");
    }
    for (uint32_t e = 0; e < deg; ++e) {
      if (row[e] >= n) return Status::IOError(path + ": neighbor id out of range");
    }
    out.graph.SetNeighbors(i, row.data(), deg);
  }
  return out;
}

Status SaveLvq(const std::string& path, const LvqDataset& ds) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  return SaveLvqTo(f.get(), ds, path);
}

Result<LvqDataset> LoadLvq(const std::string& path, bool use_huge_pages) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  return LoadLvqFrom(f.get(), path, use_huge_pages);
}

Status SaveLvq2(const std::string& path, const LvqDataset2& ds) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  const uint32_t bits2 = static_cast<uint32_t>(ds.bits2());
  if (!WritePod(f.get(), kLvq2Magic) || !WritePod(f.get(), kVersion) ||
      !WritePod(f.get(), bits2)) {
    return Status::IOError(path + ": header write failed");
  }
  BLINK_RETURN_NOT_OK(SaveLvqTo(f.get(), ds.level1(), path));
  if (!WriteAll(f.get(), ds.raw_residuals(),
                ds.size() * ds.residual_stride())) {
    return Status::IOError(path + ": residual write failed");
  }
  return Status::OK();
}

Result<LvqDataset2> LoadLvq2(const std::string& path, bool use_huge_pages) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  uint32_t magic = 0, version = 0, bits2 = 0;
  if (!ReadPod(f.get(), &magic) || magic != kLvq2Magic) {
    return Status::IOError(path + ": bad LVQ2 magic");
  }
  if (!ReadPod(f.get(), &version) || version != kVersion ||
      !ReadPod(f.get(), &bits2) || bits2 < 1 || bits2 > 16) {
    return Status::IOError(path + ": corrupt LVQ2 header");
  }
  Result<LvqDataset> level1 = LoadLvqFrom(f.get(), path, use_huge_pages);
  if (!level1.ok()) return level1.status();
  const size_t n = level1.value().size();
  const size_t stride = PackedBytes(level1.value().dim(), static_cast<int>(bits2));
  std::vector<uint8_t> residuals(n * stride);
  if (!ReadAll(f.get(), residuals.data(), residuals.size())) {
    return Status::IOError(path + ": truncated residuals");
  }
  return LvqDataset2::FromRaw(std::move(level1).value(),
                              static_cast<int>(bits2), residuals.data(),
                              residuals.size(), use_huge_pages);
}

Status SaveOgLvqIndex(const std::string& prefix,
                      const VamanaIndex<LvqStorage>& index) {
  if (index.storage().has_second_level()) {
    BLINK_RETURN_NOT_OK(SaveLvq2(prefix + ".vecs", *index.storage().level2()));
  } else {
    BLINK_RETURN_NOT_OK(SaveLvq(prefix + ".vecs", index.storage().level1()));
  }
  return SaveGraph(prefix + ".graph", index.graph(), index.entry_point());
}

Result<std::unique_ptr<VamanaIndex<LvqStorage>>> LoadOgLvqIndex(
    const std::string& prefix, Metric metric, const VamanaBuildParams& bp,
    bool use_huge_pages) {
  Result<BuiltGraph> graph = LoadGraph(prefix + ".graph", use_huge_pages);
  if (!graph.ok()) return graph.status();
  // The on-disk graph knows its own degree; don't let the caller's default
  // build params misreport it (e.g. in name()).
  VamanaBuildParams actual = bp;
  actual.graph_max_degree = graph.value().graph.max_degree();
  // Try two-level first, fall back to one-level.
  Result<LvqDataset2> two = LoadLvq2(prefix + ".vecs", use_huge_pages);
  if (two.ok()) {
    LvqStorage storage(std::move(two).value(), metric);
    return std::make_unique<VamanaIndex<LvqStorage>>(
        std::move(storage), std::move(graph).value(), actual);
  }
  Result<LvqDataset> one = LoadLvq(prefix + ".vecs", use_huge_pages);
  if (!one.ok()) return one.status();
  LvqStorage storage(std::move(one).value(), metric);
  return std::make_unique<VamanaIndex<LvqStorage>>(
      std::move(storage), std::move(graph).value(), actual);
}

}  // namespace blink
