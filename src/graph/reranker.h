// The Reranker seam (DESIGN.md D14): the one shared implementation of the
// paper's two-level refinement (Sec. 3.2) — search wide with the primary
// (compressed / reduced-dimension) representation, re-score the top
// `rerank_window` candidates with the storage's secondary view
// (FullDistance), then select the top k.
//
// A storage participates by exposing the secondary-view half of the storage
// concept (graph/storage.h):
//
//   bool  has_second_level()                       — seam present at all?
//   void  PrefetchSecondLevel(id)                  — warm the gather
//   float FullDistance(query, id, decode_scratch)  — secondary re-score
//
// Every flavor — static LVQ-4x8 residuals, the dynamic index's
// insert-time-encoded LVQ arena, LeanVec's full-dimension secondary — routes
// through RescoreCandidates below; none carries its own copy of the loop.
// The capability bit (kCapRerank) and Calibrate phase 3 are derived from the
// same seam declaratively, via SpecCapabilities (api/spec.cc).
//
// Determinism note: the re-scored (dist, id) pairs compare by a strict
// total order (ids are unique), so a partial_sort whose prefix covers the
// emitted results yields exactly the same prefix as a full sort. Callers
// therefore pass the cheapest `sorted_prefix` that covers what they emit:
// the static path sorts only k, the dynamic path sorts the whole depth
// because the tombstone filter may skip past any prefix.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace blink {

/// Re-rank depth: how many of the buffer's sorted primary candidates enter
/// the secondary re-score. `rerank_window == 0` keeps the historical
/// behavior (the whole buffer); otherwise the depth is clamped to at least
/// k so re-ranking can never return fewer results than requested. `slack`
/// widens the depth for candidates that will be filtered after re-scoring
/// (the dynamic path's navigable tombstones).
inline size_t RerankDepth(size_t buffer_size, size_t k, uint32_t rerank_window,
                          size_t slack = 0) {
  if (rerank_window == 0) return buffer_size;
  return std::min<size_t>(buffer_size,
                          std::max<size_t>(rerank_window, k) + slack);
}

/// The shared re-rank loop: prefetches the secondary view of the top `m`
/// candidates, re-scores each with FullDistance, and sorts the first
/// `sorted_prefix` pairs (the rest stay unordered — see the determinism
/// note above). `buffer` is any sorted candidate sequence exposing
/// `operator[](i).id` (SearchBuffer on both the static and dynamic paths);
/// `decode_scratch` must hold storage.dim() floats.
template <typename Storage, typename Buffer>
void RescoreCandidates(const Storage& storage,
                       const typename Storage::Query& query,
                       const Buffer& buffer, size_t m, size_t sorted_prefix,
                       float* decode_scratch,
                       std::vector<std::pair<float, uint32_t>>* rescored) {
  rescored->clear();
  rescored->reserve(m);
  for (size_t i = 0; i < m; ++i) storage.PrefetchSecondLevel(buffer[i].id);
  for (size_t i = 0; i < m; ++i) {
    const uint32_t id = buffer[i].id;
    rescored->push_back({storage.FullDistance(query, id, decode_scratch), id});
  }
  std::partial_sort(rescored->begin(),
                    rescored->begin() +
                        static_cast<ptrdiff_t>(std::min(sorted_prefix, m)),
                    rescored->end());
}

/// Emits re-scored pairs in ascending distance order, skipping those the
/// predicate rejects (dynamic tombstones; the static path passes a
/// constant-false predicate), until `k` results are out or the pairs run
/// dry. `ids`/`dists` are cleared first; padding to exactly k is the
/// caller's contract, not this helper's.
template <typename SkipPred>
void EmitRescored(const std::vector<std::pair<float, uint32_t>>& rescored,
                  size_t k, SkipPred skip, std::vector<uint32_t>* ids,
                  std::vector<float>* dists) {
  ids->clear();
  dists->clear();
  for (const auto& [dist, id] : rescored) {
    if (skip(id)) continue;
    ids->push_back(id);
    dists->push_back(dist);
    if (ids->size() == k) break;
  }
}

}  // namespace blink
