// Growable vector-storage codecs for the dynamic index.
//
// graph/storage.h defines the *static* storage concept: built once over a
// full dataset, immutable afterwards. The dynamic index needs three more
// operations, all writer-side:
//
//   Grow(new_capacity)   — enlarge the arena (under the index's exclusive
//                          lock; the old arena is freed on return),
//   Set(slot, vec)       — write/encode one vector into an unpublished
//                          slot (fresh, or recycled after a quiesce),
//   DecodeVector(i, out) — reconstruct a stored vector so insert-time
//                          pruning can measure stored-to-stored distances
//                          through the same asymmetric kernels.
//
// plus the static concept's query side (PrepareQuery / Distance /
// FullDistance / Prefetch), which the read path uses unchanged. Both
// storages index by slot in [0, capacity); liveness is the index's concern.
//
// DynamicFloatStorage is the uncompressed baseline (what DynamicIndex
// always stored); DynamicLvqStorage binds the growable LVQ code arena
// (quant/lvq_dynamic.h) to a metric and the fused distance kernels,
// mirroring how LvqStorage wraps LvqDataset.
#pragma once

#include <cassert>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "graph/storage.h"
#include "quant/lvq_dynamic.h"
#include "simd/distance.h"

namespace blink {

// ---------------------------------------------------------------------------
// Growable full-precision float32 storage.
// ---------------------------------------------------------------------------
class DynamicFloatStorage {
 public:
  struct Query {
    std::vector<float> q;
  };

  DynamicFloatStorage() = default;
  DynamicFloatStorage(size_t dim, Metric metric)
      : d_(dim),
        metric_(metric),
        l2_(simd::GetL2F32(dim)),
        ip_(simd::GetIpF32(dim)) {}

  size_t dim() const { return d_; }
  Metric metric() const { return metric_; }
  size_t capacity() const { return capacity_; }
  size_t memory_bytes() const { return capacity_ * d_ * sizeof(float); }
  const char* encoding_name() const { return "float32"; }

  void Grow(size_t new_capacity) {
    if (new_capacity <= capacity_) return;
    data_.resize(new_capacity * d_);
    capacity_ = new_capacity;
  }

  void Set(uint32_t slot, const float* vec) {
    assert(slot < capacity_);
    std::copy(vec, vec + d_, data_.data() + slot * d_);
  }

  const float* row(uint32_t i) const { return data_.data() + i * d_; }

  void PrepareQuery(const float* q, Query* out) const {
    out->q.assign(q, q + d_);
  }

  float Distance(const Query& q, uint32_t i) const {
    return metric_ == Metric::kL2 ? l2_(q.q.data(), row(i), d_)
                                  : ip_(q.q.data(), row(i), d_);
  }

  bool has_second_level() const { return false; }
  float FullDistance(const Query& q, uint32_t i, float* /*scratch*/) const {
    return Distance(q, i);
  }

  void DecodeVector(uint32_t i, float* out) const {
    std::memcpy(out, row(i), d_ * sizeof(float));
  }

  void Prefetch(uint32_t i) const {
    simd::PrefetchBytes(row(i), d_ * sizeof(float));
  }
  void PrefetchSecondLevel(uint32_t /*i*/) const {}

  // --- persistence access (graph/serialize.cc) -----------------------------

  const float* raw_rows() const { return data_.data(); }
  /// Copies `n` serialized rows into the arena. Requires capacity() >= n.
  void RestoreRows(const float* rows, size_t n) {
    assert(n <= capacity_);
    std::memcpy(data_.data(), rows, n * d_ * sizeof(float));
  }

 private:
  size_t d_ = 0;
  Metric metric_ = Metric::kL2;
  size_t capacity_ = 0;
  std::vector<float> data_;  // capacity * dim
  simd::DistF32Fn l2_ = nullptr;
  simd::DistF32Fn ip_ = nullptr;
};

// ---------------------------------------------------------------------------
// Growable LVQ-B / LVQ-B1xB2 storage (insert-time encoding).
// ---------------------------------------------------------------------------
class DynamicLvqStorage {
 public:
  using Options = DynamicLvqDataset::Options;

  struct Query {
    std::vector<float> q;  ///< centered query (L2) or raw query (IP)
    float bias = 0.0f;     ///< IP correction: -<q, mu>
  };

  DynamicLvqStorage() = default;
  DynamicLvqStorage(size_t dim, Metric metric, Options opts)
      : ds_(dim, std::move(opts)), metric_(metric) {
    l2u8_ = simd::GetL2U8(dim);
    ipu8_ = simd::GetIpU8(dim);
    l2u4_ = simd::GetL2U4(dim);
    ipu4_ = simd::GetIpU4(dim);
  }
  /// Default configuration (one-level LVQ-8, zero mean).
  DynamicLvqStorage(size_t dim, Metric metric)
      : DynamicLvqStorage(dim, metric, Options()) {}

  size_t dim() const { return ds_.dim(); }
  Metric metric() const { return metric_; }
  size_t capacity() const { return ds_.capacity(); }
  size_t memory_bytes() const { return ds_.memory_bytes(); }
  const char* encoding_name() const {
    name_cache_ = ds_.has_second_level()
                      ? "LVQ-" + std::to_string(ds_.bits1()) + "x" +
                            std::to_string(ds_.bits2())
                      : "LVQ-" + std::to_string(ds_.bits1());
    return name_cache_.c_str();
  }

  const DynamicLvqDataset& dataset() const { return ds_; }
  DynamicLvqDataset& dataset() { return ds_; }

  void Grow(size_t new_capacity) { ds_.Grow(new_capacity); }
  void Set(uint32_t slot, const float* vec) { ds_.EncodeInto(slot, vec); }

  void PrepareQuery(const float* q, Query* out) const {
    const std::vector<float>& mean = ds_.mean();
    const size_t d = ds_.dim();
    out->q.resize(d);
    if (metric_ == Metric::kL2) {
      for (size_t j = 0; j < d; ++j) out->q[j] = q[j] - mean[j];
      out->bias = 0.0f;
    } else {
      std::memcpy(out->q.data(), q, d * sizeof(float));
      float dot = 0.0f;
      for (size_t j = 0; j < d; ++j) dot += q[j] * mean[j];
      out->bias = -dot;
    }
  }

  float Distance(const Query& q, uint32_t i) const {
    const LvqConstants c = ds_.constants(i);
    const uint8_t* cs = ds_.codes(i);
    const size_t d = ds_.dim();
    const int b = ds_.bits1();
    float dist;
    if (b == 8) {
      dist = metric_ == Metric::kL2 ? l2u8_(q.q.data(), cs, c.delta, c.lower, d)
                                    : ipu8_(q.q.data(), cs, c.delta, c.lower, d);
    } else if (b == 4) {
      dist = metric_ == Metric::kL2 ? l2u4_(q.q.data(), cs, c.delta, c.lower, d)
                                    : ipu4_(q.q.data(), cs, c.delta, c.lower, d);
    } else {
      dist = GenericDistance(q, cs, c, b, d);
    }
    return dist + q.bias;
  }

  bool has_second_level() const { return ds_.has_second_level(); }

  /// Two-level distance for the final re-ranking gather (Sec. 3.2).
  float FullDistance(const Query& q, uint32_t i, float* scratch) const {
    if (!has_second_level()) return Distance(q, i);
    ds_.DecodeCentered(i, scratch);
    const size_t d = ds_.dim();
    if (metric_ == Metric::kL2) return simd::L2Sqr(q.q.data(), scratch, d);
    return simd::IpDist(q.q.data(), scratch, d) + q.bias;
  }

  void DecodeVector(uint32_t i, float* out) const { ds_.Decode(i, out); }

  void Prefetch(uint32_t i) const {
    simd::PrefetchBytes(ds_.blob(i), ds_.stride());
  }
  void PrefetchSecondLevel(uint32_t i) const {
    if (has_second_level()) {
      simd::PrefetchBytes(ds_.residual_codes(i), ds_.residual_stride());
    }
  }

 private:
  /// Arbitrary-B fallback (shared reference kernels, quant/lvq.h).
  float GenericDistance(const Query& q, const uint8_t* cs,
                        const LvqConstants& c, int bits, size_t d) const {
    return metric_ == Metric::kL2 ? LvqGenericL2(q.q.data(), cs, c, bits, d)
                                  : LvqGenericIp(q.q.data(), cs, c, bits, d);
  }

  DynamicLvqDataset ds_;
  Metric metric_ = Metric::kL2;
  simd::DistU8Fn l2u8_ = nullptr;
  simd::DistU8Fn ipu8_ = nullptr;
  simd::DistU4Fn l2u4_ = nullptr;
  simd::DistU4Fn ipu4_ = nullptr;
  mutable std::string name_cache_;
};

}  // namespace blink
