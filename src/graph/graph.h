// Flat adjacency storage for graph indices (paper Sec. 5, "Memory layout
// and allocation").
//
// The paper avoids graph layouts with memory indirections (CSR, list of
// lists) because they lower the cache hit rate under the random access
// pattern of greedy search. FlatGraph stores one fixed-size row per node in
// a single contiguous allocation (huge-page backed when available):
//
//     [ degree : u32 ][ neighbor ids : u32 * max_degree ]
//
// Rows are addressable by multiplication, never by pointer chasing.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>

#include "util/memory.h"

namespace blink {

class FlatGraph {
 public:
  FlatGraph() = default;
  FlatGraph(size_t num_nodes, uint32_t max_degree, bool use_huge_pages = true)
      : n_(num_nodes),
        max_degree_(max_degree),
        row_entries_(1 + static_cast<size_t>(max_degree)),
        storage_(num_nodes * (1 + static_cast<size_t>(max_degree)) *
                     sizeof(uint32_t),
                 use_huge_pages) {}

  size_t size() const { return n_; }
  uint32_t max_degree() const { return max_degree_; }

  uint32_t degree(size_t i) const { return row(i)[0]; }

  const uint32_t* neighbors(size_t i) const { return row(i) + 1; }

  /// Replaces the adjacency list of node i. count must be <= max_degree.
  void SetNeighbors(size_t i, const uint32_t* ids, uint32_t count) {
    assert(count <= max_degree_);
    uint32_t* r = row(i);
    r[0] = count;
    if (count > 0) std::memcpy(r + 1, ids, count * sizeof(uint32_t));
  }

  /// Appends a neighbor; returns false if the row is full.
  bool AddNeighbor(size_t i, uint32_t id) {
    uint32_t* r = row(i);
    if (r[0] >= max_degree_) return false;
    r[1 + r[0]] = id;
    ++r[0];
    return true;
  }

  void Clear(size_t i) { row(i)[0] = 0; }

  size_t memory_bytes() const { return n_ * row_entries_ * sizeof(uint32_t); }
  PageBacking backing() const { return storage_.backing(); }

  void PrefetchAdjacency(size_t i) const {
    const char* p = reinterpret_cast<const char*>(row(i));
    const size_t bytes = row_entries_ * sizeof(uint32_t);
    for (size_t off = 0; off < bytes; off += 64) __builtin_prefetch(p + off, 0, 3);
  }

  /// Average out-degree across all nodes (diagnostics / tests).
  double AverageDegree() const {
    if (n_ == 0) return 0.0;
    size_t total = 0;
    for (size_t i = 0; i < n_; ++i) total += degree(i);
    return static_cast<double>(total) / static_cast<double>(n_);
  }

 private:
  uint32_t* row(size_t i) {
    assert(i < n_);
    return reinterpret_cast<uint32_t*>(storage_.data()) + i * row_entries_;
  }
  const uint32_t* row(size_t i) const {
    assert(i < n_);
    return reinterpret_cast<const uint32_t*>(storage_.data()) + i * row_entries_;
  }

  size_t n_ = 0;
  uint32_t max_degree_ = 0;
  size_t row_entries_ = 0;
  Arena storage_;
};

}  // namespace blink
