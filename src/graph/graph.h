// Flat adjacency storage for graph indices (paper Sec. 5, "Memory layout
// and allocation").
//
// The paper avoids graph layouts with memory indirections (CSR, list of
// lists) because they lower the cache hit rate under the random access
// pattern of greedy search. FlatGraph stores one fixed-size row per node in
// a single contiguous allocation (huge-page backed when available):
//
//     [ degree : u32 ][ neighbor ids : u32 * max_degree ]
//
// Rows are addressable by multiplication, never by pointer chasing.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>

#include "util/memory.h"

namespace blink {

class FlatGraph {
 public:
  FlatGraph() = default;
  FlatGraph(size_t num_nodes, uint32_t max_degree, bool use_huge_pages = true)
      : n_(num_nodes),
        max_degree_(max_degree),
        row_entries_(1 + static_cast<size_t>(max_degree)),
        storage_(num_nodes * (1 + static_cast<size_t>(max_degree)) *
                     sizeof(uint32_t),
                 use_huge_pages) {}

  /// Non-owning view over externally owned rows in exactly this layout
  /// (the mmap-serving path: a v3 graph file's payload *is* the row
  /// array). The view is read-only — mutators assert. The caller keeps
  /// `rows` alive and 4-byte aligned for the graph's lifetime.
  FlatGraph(const uint32_t* rows, size_t num_nodes, uint32_t max_degree)
      : n_(num_nodes),
        max_degree_(max_degree),
        row_entries_(1 + static_cast<size_t>(max_degree)),
        ext_rows_(rows) {}

  /// True when this graph is a view over external (e.g. mapped) rows.
  bool mapped() const { return ext_rows_ != nullptr; }

  size_t size() const { return n_; }
  uint32_t max_degree() const { return max_degree_; }

  uint32_t degree(size_t i) const { return row(i)[0]; }

  const uint32_t* neighbors(size_t i) const { return row(i) + 1; }

  /// Replaces the adjacency list of node i. count must be <= max_degree.
  void SetNeighbors(size_t i, const uint32_t* ids, uint32_t count) {
    assert(count <= max_degree_);
    uint32_t* r = row(i);
    r[0] = count;
    if (count > 0) std::memcpy(r + 1, ids, count * sizeof(uint32_t));
  }

  /// Appends a neighbor; returns false if the row is full.
  bool AddNeighbor(size_t i, uint32_t id) {
    uint32_t* r = row(i);
    if (r[0] >= max_degree_) return false;
    r[1 + r[0]] = id;
    ++r[0];
    return true;
  }

  void Clear(size_t i) { row(i)[0] = 0; }

  // -------------------------------------------------------------------------
  // Single-writer / multi-reader row access (DESIGN.md D6).
  //
  // The dynamic index mutates adjacency while searches traverse it. The
  // writer publishes every row word — each neighbor id AND the degree —
  // with release stores; readers load each with acquire. A concurrent
  // reader may observe a slightly stale or mixed old/new neighbor list —
  // every id it sees is individually valid (each is a single atomic u32),
  // which greedy search tolerates — but any id it extracts synchronizes
  // with everything the writer did before storing that word (in
  // particular, the id's vector data: Insert writes the vector before
  // publishing the id anywhere). The degree-only ordering used here
  // originally was not enough: a reader pairing an old degree with a
  // word from a concurrent row rewrite obtained a fresh id with no
  // happens-before edge to its vector write (caught by TSan as a race on
  // the vector row). Per-word release/acquire costs nothing extra on
  // x86 (plain movs) and closes that hole. Writers must be externally
  // serialized. All cross-thread accesses go through std::atomic_ref, so
  // the scheme is TSan-clean.
  // -------------------------------------------------------------------------

  /// Reader-side row copy: acquire-loads the degree, then copies the ids
  /// into `out` (capacity >= max_degree). Returns the copied count.
  uint32_t CopyNeighborsAcquire(size_t i, uint32_t* out) const {
    uint32_t* r = const_cast<uint32_t*>(row(i));
    const uint32_t deg = std::min(
        std::atomic_ref<uint32_t>(r[0]).load(std::memory_order_acquire),
        max_degree_);
    for (uint32_t j = 0; j < deg; ++j) {
      out[j] = std::atomic_ref<uint32_t>(r[1 + j]).load(
          std::memory_order_acquire);
    }
    return deg;
  }

  /// Writer-side full-row replacement: stores the ids, then release-stores
  /// the new degree so readers that see it also see the ids.
  void PublishNeighbors(size_t i, const uint32_t* ids, uint32_t count) {
    assert(count <= max_degree_);
    uint32_t* r = row(i);
    for (uint32_t j = 0; j < count; ++j) {
      std::atomic_ref<uint32_t>(r[1 + j]).store(ids[j],
                                                std::memory_order_release);
    }
    std::atomic_ref<uint32_t>(r[0]).store(count, std::memory_order_release);
  }

  /// Writer-side append; returns false if the row is full. The id is
  /// visible to readers only once the incremented degree is.
  bool PublishAddNeighbor(size_t i, uint32_t id) {
    uint32_t* r = row(i);
    const uint32_t deg = r[0];  // only the (serialized) writer stores rows
    if (deg >= max_degree_) return false;
    std::atomic_ref<uint32_t>(r[1 + deg]).store(id, std::memory_order_release);
    std::atomic_ref<uint32_t>(r[0]).store(deg + 1, std::memory_order_release);
    return true;
  }

  /// Writer-side row clear visible to concurrent readers.
  void PublishClear(size_t i) {
    std::atomic_ref<uint32_t>(row(i)[0]).store(0, std::memory_order_release);
  }

  size_t memory_bytes() const { return n_ * row_entries_ * sizeof(uint32_t); }
  PageBacking backing() const { return storage_.backing(); }

  void PrefetchAdjacency(size_t i) const {
    const char* p = reinterpret_cast<const char*>(row(i));
    const size_t bytes = row_entries_ * sizeof(uint32_t);
    for (size_t off = 0; off < bytes; off += 64) __builtin_prefetch(p + off, 0, 3);
  }

  /// Average out-degree across all nodes (diagnostics / tests).
  double AverageDegree() const {
    if (n_ == 0) return 0.0;
    size_t total = 0;
    for (size_t i = 0; i < n_; ++i) total += degree(i);
    return static_cast<double>(total) / static_cast<double>(n_);
  }

 private:
  uint32_t* row(size_t i) {
    assert(i < n_);
    assert(ext_rows_ == nullptr && "mapped graphs are read-only");
    return reinterpret_cast<uint32_t*>(storage_.data()) + i * row_entries_;
  }
  const uint32_t* row(size_t i) const {
    assert(i < n_);
    const uint32_t* base =
        ext_rows_ != nullptr ? ext_rows_
                             : reinterpret_cast<const uint32_t*>(storage_.data());
    return base + i * row_entries_;
  }

  size_t n_ = 0;
  uint32_t max_degree_ = 0;
  size_t row_entries_ = 0;
  Arena storage_;
  const uint32_t* ext_rows_ = nullptr;
};

}  // namespace blink
