// Greedy graph search (paper Algorithm 1) with the Sec. 5 optimizations:
// sorted linear buffer, software prefetching with tunable
// (prefetch-offset, prefetch-step), optional visited set, and a final
// two-level re-ranking gather when the storage has compressed residuals
// (Sec. 3.2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "filter/metadata.h"
#include "graph/graph.h"
#include "graph/reranker.h"
#include "graph/search_buffer.h"

namespace blink {

/// Runtime knobs of one search. The window W trades accuracy for speed;
/// the prefetch pair reproduces Fig. 7(a); `use_visited_set` reproduces the
/// Sec. 5 visited-set ablation.
struct SearchParams {
  uint32_t window = 32;          ///< W: candidate-queue capacity (>= k)
  uint32_t prefetch_offset = 0;  ///< lookahead offset into the neighbor list
  uint32_t prefetch_step = 2;    ///< vectors prefetched per iteration
  /// Track visited ids (Sec. 5 ablation). The paper disables its
  /// associative visited structure for small d; our epoch-stamped array is
  /// cheap enough that keeping it on measures faster on this substrate
  /// (see bench/ablation_search_opts and EXPERIMENTS.md), so on is the
  /// default. The knob reproduces the paper's ablation either way.
  bool use_visited_set = true;
  bool rerank = true;            ///< use the second level when available
  /// Re-rank depth: candidates re-scored at full two-level precision before
  /// the top-k selection. 0 = all W candidates (the historical behavior);
  /// otherwise clamped into [k, W]. Only meaningful when `rerank` is set
  /// and the storage has a second level.
  uint32_t rerank_window = 0;
  /// Metadata predicate restricting results (null = unfiltered); see
  /// DESIGN.md D15. The view must outlive the search call.
  const FilterView* filter = nullptr;
  /// With a filter set: true = in-search push-down (failing vertices are
  /// excluded from the result set per candidate but still traversed,
  /// filtered-Vamana style); false = post-filter (failing vertices are
  /// dropped at extraction, callers widen the window adaptively).
  bool filter_push_down = false;
};

/// Disposition of one served query. Search paths always produce kOk; the
/// serving layer uses the other values so a rejected or shutdown-raced
/// query is distinguishable from a real zero-hit answer (which is kOk with
/// all-padded ids). Checked by the loadgen/recall accounting in
/// tools/blink_serve and mapped onto wire status codes by src/net/.
enum class SearchOutcome : uint8_t {
  kOk = 0,        ///< the query ran; ids/dists are a real answer
  kRejected = 1,  ///< admission control refused it (queue at capacity)
  kShutdown = 2,  ///< the engine was stopping; the query never ran
};

struct SearchResult {
  std::vector<uint32_t> ids;
  std::vector<float> dists;
  size_t distance_computations = 0;
  size_t hops = 0;  ///< nodes expanded
  SearchOutcome outcome = SearchOutcome::kOk;
};

/// Reusable single-query searcher over one (graph, storage) pair. Not
/// thread-safe; create one per worker thread (batch parallelism is across
/// queries, as in the paper).
template <typename Storage>
class GreedySearcher {
 public:
  GreedySearcher(const FlatGraph* graph, const Storage* storage)
      : graph_(graph), storage_(storage), scratch_(storage->dim()) {}

  /// Runs Algorithm 1 from `entry_point`, returning the k best candidates.
  void Search(const float* query, size_t k, uint32_t entry_point,
              const SearchParams& params, SearchResult* out) {
    const uint32_t window = std::max<uint32_t>(params.window, k);
    buffer_.Reset(window);
    // In-search push-down keeps a second sorted buffer holding only
    // predicate-passing candidates: the traversal (buffer_) still routes
    // through failing vertices so connectivity is preserved, while the
    // result set is drawn from passing_ at extraction.
    const bool push_down =
        params.filter != nullptr && params.filter_push_down;
    if (push_down) passing_.Reset(window);
    storage_->PrepareQuery(query, &query_state_);
    if (params.use_visited_set) {
      EnsureVisitedCapacity();
      visited_.NextQuery();
    }
    out->distance_computations = 0;
    out->hops = 0;

    const float d0 = storage_->Distance(query_state_, entry_point);
    ++out->distance_computations;
    buffer_.Insert(d0, entry_point);
    if (push_down && params.filter->Pass(entry_point)) {
      passing_.Insert(d0, entry_point);
    }
    if (params.use_visited_set) visited_.CheckAndMark(entry_point);

    // Safety bound: without a visited set a node can be re-expanded after
    // buffer eviction; convergence is monotone but we cap hops anyway.
    const size_t max_hops = 64 * static_cast<size_t>(window) + 256;

    long idx;
    while ((idx = buffer_.NextUnexplored()) >= 0 && out->hops < max_hops) {
      const uint32_t node = buffer_[static_cast<size_t>(idx)].id;
      buffer_.MarkExplored(static_cast<size_t>(idx));
      ++out->hops;

      const uint32_t* nbrs = graph_->neighbors(node);
      const uint32_t deg = graph_->degree(node);

      // Software prefetch schedule (Sec. 5): keep the prefetch pointer
      // `offset + step` vectors ahead of the compute pointer. step==0 and
      // offset==0 disables prefetching entirely.
      const uint32_t lookahead = params.prefetch_offset + params.prefetch_step;

      // Next-hop prefetch: NextUnexplored() is an idempotent cursor peek,
      // so the likely next expansion is known now — issue its adjacency
      // row and vector fetch to overlap with this node's distance
      // computations. On a mapped (out-of-core) index this is what turns a
      // cold page fault into work hidden behind compute; on a resident
      // index it is an ordinary cache-line prefetch. An Insert below can
      // still supersede the peeked candidate — the prefetch is then merely
      // wasted, never wrong.
      if (lookahead > 0) {
        const long next = buffer_.NextUnexplored();
        if (next >= 0) {
          const uint32_t next_node = buffer_[static_cast<size_t>(next)].id;
          graph_->PrefetchAdjacency(next_node);
          storage_->Prefetch(next_node);
        }
      }
      uint32_t pf = 0;
      if (lookahead > 0) {
        const uint32_t warm = std::min(deg, lookahead);
        for (; pf < warm; ++pf) storage_->Prefetch(nbrs[pf]);
      }
      for (uint32_t t = 0; t < deg; ++t) {
        if (lookahead > 0) {
          const uint32_t target = std::min(deg, t + 1 + lookahead);
          for (; pf < target; ++pf) storage_->Prefetch(nbrs[pf]);
        }
        const uint32_t cand = nbrs[t];
        if (params.use_visited_set && !visited_.CheckAndMark(cand)) continue;
        const float d = storage_->Distance(query_state_, cand);
        ++out->distance_computations;
        buffer_.Insert(d, cand);
        if (push_down && params.filter->Pass(cand)) passing_.Insert(d, cand);
      }
    }

    ExtractTopK(k, params, out);
  }

  /// Accumulated candidates of the last search (ids in ascending-distance
  /// order); used by the graph builder as the pruning candidate pool.
  const SearchBuffer& buffer() const { return buffer_; }

  const typename Storage::Query& query_state() const { return query_state_; }

 private:
  void EnsureVisitedCapacity() {
    if (visited_capacity_ != storage_->size()) {
      visited_.Resize(storage_->size());
      visited_capacity_ = storage_->size();
    }
  }

  /// Selects the k results. With a second level present and rerank enabled,
  /// re-scores the top `rerank_window` candidates (all W when 0) through the
  /// shared Reranker seam (graph/reranker.h) first. The buffer is sorted by
  /// primary distance, so a partial depth re-ranks the most promising
  /// prefix.
  void ExtractTopK(size_t k, const SearchParams& params, SearchResult* out) {
    if (params.filter != nullptr) {
      ExtractTopKFiltered(k, params, out);
      return;
    }
    const size_t m = RerankDepth(buffer_.size(), k, params.rerank_window);
    const size_t kk = std::min(k, m);
    if (params.rerank && storage_->has_second_level() && m > 0) {
      RescoreCandidates(*storage_, query_state_, buffer_, m,
                        /*sorted_prefix=*/kk, scratch_.data(), &rerank_);
      EmitRescored(
          rerank_, kk, [](uint32_t) { return false; }, &out->ids, &out->dists);
      return;
    }
    out->ids.resize(kk);
    out->dists.resize(kk);
    for (size_t i = 0; i < kk; ++i) {
      out->ids[i] = buffer_[i].id;
      out->dists[i] = buffer_[i].dist;
    }
  }

  /// Filtered selection. Survivors come from the passing_ buffer (push-down:
  /// already predicate-gated) or from filtering buffer_ (post-filter), and
  /// only those survivors enter the two-level re-score — the re-rank
  /// epilogue never spends FullDistance gathers on failing candidates.
  void ExtractTopKFiltered(size_t k, const SearchParams& params,
                           SearchResult* out) {
    survivors_.clear();
    if (params.filter_push_down) {
      for (size_t i = 0; i < passing_.size(); ++i) {
        survivors_.push_back(passing_[i]);
      }
    } else {
      for (size_t i = 0; i < buffer_.size(); ++i) {
        if (params.filter->Pass(buffer_[i].id)) {
          survivors_.push_back(buffer_[i]);
        }
      }
    }
    const size_t m = RerankDepth(survivors_.size(), k, params.rerank_window);
    const size_t kk = std::min(k, m);
    if (params.rerank && storage_->has_second_level() && m > 0) {
      RescoreCandidates(*storage_, query_state_, survivors_, m,
                        /*sorted_prefix=*/kk, scratch_.data(), &rerank_);
      EmitRescored(
          rerank_, kk, [](uint32_t) { return false; }, &out->ids, &out->dists);
      return;
    }
    out->ids.resize(kk);
    out->dists.resize(kk);
    for (size_t i = 0; i < kk; ++i) {
      out->ids[i] = survivors_[i].id;
      out->dists[i] = survivors_[i].dist;
    }
  }

  const FlatGraph* graph_;
  const Storage* storage_;
  SearchBuffer buffer_;
  SearchBuffer passing_;  ///< predicate-passing results (push-down mode)
  typename Storage::Query query_state_;
  VisitedSet visited_;
  size_t visited_capacity_ = 0;
  std::vector<float> scratch_;
  std::vector<std::pair<float, uint32_t>> rerank_;
  std::vector<SearchBuffer::Entry> survivors_;  ///< filtered extraction pool
};

/// Adaptive widening loop shared by every filtered search path: runs
/// `run(window, out)` with geometrically growing windows until the result
/// holds k survivors (out->ids, pre-padding) or the window reaches
/// `widen_cap` (see ResolveWidenCap in filter/metadata.h). Work counters
/// accumulate across retries so QPS/work accounting reflects total cost.
template <typename RunFn>
void RunWidened(size_t k, uint32_t window0, uint32_t widen_cap, RunFn&& run,
                SearchResult* out) {
  size_t dc = 0;
  size_t hops = 0;
  uint32_t w = std::max<uint32_t>(window0, 1);
  for (;;) {
    run(w, out);
    dc += out->distance_computations;
    hops += out->hops;
    if (out->ids.size() >= k || w >= widen_cap) break;
    w = static_cast<uint32_t>(
        std::min<uint64_t>(widen_cap, uint64_t{w} * 2));
  }
  out->distance_computations = dc;
  out->hops = hops;
}

}  // namespace blink
