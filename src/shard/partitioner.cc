#include "shard/partitioner.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "cluster/kmeans.h"
#include "util/prng.h"

namespace blink {

namespace {

/// Recomputes centroids as the mean of each shard's assigned members (empty
/// shards keep a zero centroid; they are never probed — see ShardedIndex).
MatrixF MemberMeans(MatrixViewF data,
                    const std::vector<std::vector<uint32_t>>& shard_to_global,
                    size_t d) {
  MatrixF centroids(shard_to_global.size(), d);
  std::vector<double> acc(d);
  for (size_t s = 0; s < shard_to_global.size(); ++s) {
    const auto& members = shard_to_global[s];
    if (members.empty()) continue;
    std::fill(acc.begin(), acc.end(), 0.0);
    for (uint32_t g : members) {
      const float* row = data.row(g);
      for (size_t j = 0; j < d; ++j) acc[j] += row[j];
    }
    float* c = centroids.row(s);
    for (size_t j = 0; j < d; ++j) {
      c[j] = static_cast<float>(acc[j] / static_cast<double>(members.size()));
    }
  }
  return centroids;
}

Partition RoundRobin(MatrixViewF data, size_t S) {
  Partition out;
  out.shard_to_global.resize(S);
  out.global_to_shard.resize(data.rows);
  for (size_t i = 0; i < data.rows; ++i) {
    const size_t s = i % S;
    out.shard_to_global[s].push_back(static_cast<uint32_t>(i));
    out.global_to_shard[i] = static_cast<uint32_t>(s);
  }
  out.centroids = MemberMeans(data, out.shard_to_global, data.cols);
  return out;
}

Partition BalancedKMeans(MatrixViewF data, const PartitionerParams& params,
                         ThreadPool* pool) {
  const size_t n = data.rows;
  const size_t d = data.cols;
  const size_t S = params.num_shards;

  // Train centroids on a uniform subsample (reservoir-free: a fixed-seed
  // shuffle prefix), enough for S cluster centers.
  KMeansParams kp;
  kp.k = S;
  kp.max_iters = params.max_kmeans_iters;
  kp.seed = params.seed;
  MatrixF sample;
  MatrixViewF train = data;
  if (n > params.train_sample && params.train_sample >= S) {
    std::vector<uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    Rng rng(params.seed ^ 0x9e3779b9u);
    for (size_t i = 0; i < params.train_sample; ++i) {
      const size_t j = i + static_cast<size_t>(rng() % (n - i));
      std::swap(perm[i], perm[j]);
    }
    sample = MatrixF(params.train_sample, d);
    for (size_t i = 0; i < params.train_sample; ++i) {
      std::memcpy(sample.row(i), data.row(perm[i]), d * sizeof(float));
    }
    train = sample;
  }
  KMeansResult km = KMeans(train, kp, pool);

  // Greedy capacity-bounded assignment: each point takes the nearest
  // centroid that still has room. Deterministic (fixed point order), and
  // no shard exceeds the cap, so per-shard build cost is bounded.
  const size_t cap = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(
             static_cast<double>((n + S - 1) / S) *
             (1.0 + std::max(0.0, params.balance_slack)))));
  Partition out;
  out.shard_to_global.resize(S);
  out.global_to_shard.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const std::vector<uint32_t> prefs =
        NearestCentroids(data.row(i), km.centroids, S);
    uint32_t chosen = prefs.back();
    for (uint32_t s : prefs) {
      if (out.shard_to_global[s].size() < cap) {
        chosen = s;
        break;
      }
    }
    out.shard_to_global[chosen].push_back(static_cast<uint32_t>(i));
    out.global_to_shard[i] = chosen;
  }
  out.centroids = MemberMeans(data, out.shard_to_global, d);
  return out;
}

}  // namespace

Partition PartitionDataset(MatrixViewF data, const PartitionerParams& params,
                           ThreadPool* pool) {
  const size_t S = std::max<size_t>(1, params.num_shards);
  PartitionerParams p = params;
  p.num_shards = S;
  if (p.method == PartitionMethod::kRoundRobin || S == 1 || data.rows <= S) {
    return RoundRobin(data, S);
  }
  return BalancedKMeans(data, p, pool);
}

}  // namespace blink
