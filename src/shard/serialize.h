// Sharded index persistence: a directory with a manifest plus one
// `<dir>/shard_NNNN.{graph,vecs}` bundle per non-empty shard, each written
// with the single-index format of graph/serialize.h.
//
// The manifest records the partition (shard count, centroids, the
// shard -> global-id lists that define the id remap) and the LVQ
// configuration. Version 2 additionally embeds the metric and graph build
// params (the IndexMeta block of graph/serialize.h), so a sharded artifact
// reloads without caller configuration; version-1 manifests still load
// with the caller's fallback values.
#pragma once

#include <memory>
#include <string>

#include "shard/sharded_index.h"
#include "util/status.h"

namespace blink {

/// Saves `index` under directory `dir` (created if missing) as
/// `dir/manifest` + per-shard bundles.
Status SaveShardedIndex(const std::string& dir, const ShardedIndex& index);

/// Loads a directory written by SaveShardedIndex. `metric` and `bp` are
/// fallbacks for version-1 manifests; a version-2 manifest overrides both.
/// `*self_described` (if non-null) reports whether the manifest carried
/// its own configuration.
Result<std::unique_ptr<ShardedIndex>> LoadShardedIndex(
    const std::string& dir, Metric metric, const VamanaBuildParams& bp,
    bool use_huge_pages = true, bool* self_described = nullptr);

/// True when `path` looks like a sharded-index directory (has a manifest).
bool IsShardedIndexDir(const std::string& path);

}  // namespace blink
