// Sharded index subsystem (DESIGN.md D8): serve datasets larger than one
// graph can build or hold by partitioning them into S independent
// Vamana+LVQ shards.
//
// Build: the Partitioner splits the dataset (balanced k-means or
// round-robin), then every shard's graph is built concurrently on the
// ThreadPool — S independent builds of n/S points each are both
// parallelizable across shards and cheaper in total than one build of n
// (per-insert search cost grows with graph size), which is where the
// build-time speedup in bench/sharded_scale comes from.
//
// Search: partition-then-probe. Per query, rank live shards by centroid
// distance, run the per-shard searchers (warm scratch via each shard's
// MakeSearcher) on the closest `SearchOptions::nprobe_shards` shards, and
// k-way-merge the per-shard top-k into global ids. Shards are disjoint, so
// the merge needs no dedup; padded per-shard slots (kInvalidId / +inf)
// sort last and are dropped, and the merged row is re-padded through
// WritePaddedRow — the eval/interface.h contract holds on every path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eval/interface.h"
#include "graph/index.h"
#include "shard/partitioner.h"

namespace blink {

struct ShardedBuildParams {
  PartitionerParams partition;
  VamanaBuildParams graph;
  int bits1 = 8;  ///< level-1 LVQ bits
  int bits2 = 0;  ///< level-2 residual bits (0 = one-level)
};

class ShardedIndex : public SearchIndex {
 public:
  using Shard = VamanaIndex<LvqStorage>;

  /// Adopts pre-built shards (the loader's path). `shards[s]` may be null
  /// only when partition.shard_to_global[s] is empty.
  ShardedIndex(std::vector<std::unique_ptr<Shard>> shards,
               Partition partition, Metric metric, int bits1, int bits2);

  std::string name() const override;
  size_t size() const override { return partition_.total_size(); }
  size_t dim() const override;
  size_t memory_bytes() const override;

  void SearchBatch(MatrixViewF queries, size_t k, const SearchOptions& params,
                   uint32_t* ids, ThreadPool* pool = nullptr) const override;

  void SearchBatchEx(MatrixViewF queries, size_t k, const SearchOptions& params,
                     uint32_t* ids, float* dists, BatchStats* stats,
                     ThreadPool* pool = nullptr) const override;

  /// Per-thread searcher owning one warm per-shard searcher each, so the
  /// ServingEngine's pooled-searcher path serves sharded indices unchanged.
  std::unique_ptr<Searcher> MakeSearcher() const override;

  size_t num_shards() const { return shards_.size(); }
  /// Null for an empty shard.
  const Shard* shard(size_t s) const { return shards_[s].get(); }
  const Partition& partition() const { return partition_; }
  Metric metric() const { return metric_; }
  int bits1() const { return bits1_; }
  int bits2() const { return bits2_; }
  /// Graph build params of the shards (from the first live shard; every
  /// shard is built with the same configuration). Defaults when all shards
  /// are empty.
  VamanaBuildParams build_params() const {
    return live_shards_.empty() ? VamanaBuildParams{}
                                : shards_[live_shards_[0]]->build_params();
  }
  double build_seconds() const { return build_seconds_; }
  void set_build_seconds(double s) { build_seconds_ = s; }

  /// Attaches per-vector metadata keyed by *global* id (row i describes
  /// global vector i; must cover exactly size() rows). The global store is
  /// sliced through the partition's local→global maps into per-shard
  /// local-id stores attached to each shard, so filtered searches run
  /// inside each probed shard (widening + strategy crossover per shard)
  /// and the merge sees only surviving candidates. Null detaches.
  Status AttachMetadata(std::shared_ptr<const MetadataStore> md);
  /// The global-id store (null when none attached).
  const MetadataStore* metadata() const { return metadata_.get(); }
  std::shared_ptr<const MetadataStore> shared_metadata() const {
    return metadata_;
  }

  /// Cumulative per-shard probe counts (queries that searched shard s)
  /// since construction — the serving layer's /stats telemetry. Relaxed
  /// atomic counters: totals are exact, cross-shard ordering is not.
  std::vector<uint64_t> probe_counts() const {
    std::vector<uint64_t> counts(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      counts[s] = probe_counts_[s].load(std::memory_order_relaxed);
    }
    return counts;
  }

 private:
  class ShardedSearcher;

  std::vector<std::unique_ptr<Shard>> shards_;
  Partition partition_;
  Metric metric_;
  int bits1_;
  int bits2_;
  std::vector<uint32_t> live_shards_;  ///< shards with at least one vector
  std::shared_ptr<const MetadataStore> metadata_;  ///< global-id store
  double build_seconds_ = 0.0;
  /// mutable: probing is logically const (search path) but counted.
  mutable std::unique_ptr<std::atomic<uint64_t>[]> probe_counts_;
};

/// Partitions `data` and builds every shard's Vamana+LVQ index, shards
/// concurrently on `pool` (each shard build is single-threaded; with S = 1
/// the one build uses the whole pool). Deterministic for any thread count.
std::unique_ptr<ShardedIndex> BuildShardedLvq(MatrixViewF data, Metric metric,
                                              const ShardedBuildParams& params,
                                              ThreadPool* pool = nullptr);

/// Configure-once builder over BuildShardedLvq, for call sites that build
/// several datasets (or several S values) with one parameter set.
class ShardedBuilder {
 public:
  explicit ShardedBuilder(ShardedBuildParams params)
      : params_(std::move(params)) {}

  std::unique_ptr<ShardedIndex> Build(MatrixViewF data, Metric metric,
                                      ThreadPool* pool = nullptr) const {
    return BuildShardedLvq(data, metric, params_, pool);
  }

  ShardedBuildParams& params() { return params_; }
  const ShardedBuildParams& params() const { return params_; }

 private:
  ShardedBuildParams params_;
};

}  // namespace blink
