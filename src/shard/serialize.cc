#include "shard/serialize.h"

#include <cstdio>
#include <filesystem>
#include <vector>

#include "graph/serialize.h"
#include "util/binio.h"

namespace blink {

namespace {

using binio::File;
using binio::ReadAll;
using binio::ReadPod;
using binio::WriteAll;
using binio::WritePod;

constexpr uint32_t kManifestMagic = 0x48534C42u;  // "BLSH"
constexpr uint32_t kManifestVersion = 1;
// Version 2 inserts the IndexMeta block (metric + graph build params)
// between the fixed header fields and the centroid payload.
constexpr uint32_t kManifestVersionMeta = 2;

std::string ShardPrefix(const std::string& dir, size_t s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/shard_%04zu", s);
  return dir + buf;
}

std::string ManifestPath(const std::string& dir) { return dir + "/manifest"; }

}  // namespace

bool IsShardedIndexDir(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(ManifestPath(path), ec);
}

Status SaveShardedIndex(const std::string& dir, const ShardedIndex& index) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create " + dir + ": " + ec.message());
  }
  const Partition& part = index.partition();
  const std::string path = ManifestPath(dir);
  // Atomic like every other artifact: IsShardedIndexDir() keys on the
  // manifest's existence, so a torn manifest would make the whole
  // directory look like a valid sharded index.
  binio::AtomicFile f(path);
  if (!f.ok()) return Status::IOError("cannot open " + path + " for writing");

  const uint64_t S = part.num_shards();
  const uint64_t n = part.total_size();
  const uint64_t d = index.dim();
  const uint32_t bits1 = static_cast<uint32_t>(index.bits1());
  const uint32_t bits2 = static_cast<uint32_t>(index.bits2());
  if (!WritePod(f.get(), kManifestMagic) ||
      !WritePod(f.get(), kManifestVersionMeta) || !WritePod(f.get(), S) ||
      !WritePod(f.get(), n) || !WritePod(f.get(), d) ||
      !WritePod(f.get(), bits1) || !WritePod(f.get(), bits2)) {
    return Status::IOError(path + ": manifest header write failed");
  }
  const IndexMeta meta{index.metric(), index.build_params()};
  BLINK_RETURN_NOT_OK(detail::WriteIndexMeta(f.get(), meta, path));
  if (!WriteAll(f.get(), part.centroids.data(),
                part.centroids.size() * sizeof(float))) {
    return Status::IOError(path + ": manifest centroid write failed");
  }
  for (uint64_t s = 0; s < S; ++s) {
    const auto& members = part.shard_to_global[s];
    const uint64_t m = members.size();
    if (!WritePod(f.get(), m) ||
        !WriteAll(f.get(), members.data(), m * sizeof(uint32_t))) {
      return Status::IOError(path + ": manifest shard list write failed");
    }
  }
  // Shards are written before the manifest commits: a crash anywhere in
  // the sequence leaves either no manifest (the directory is not a
  // sharded index yet) or a complete one whose shards already exist.
  for (uint64_t s = 0; s < S; ++s) {
    if (index.shard(s) == nullptr) continue;
    BLINK_RETURN_NOT_OK(SaveOgLvqIndex(ShardPrefix(dir, s), *index.shard(s)));
  }
  return f.Commit();
}

Result<std::unique_ptr<ShardedIndex>> LoadShardedIndex(
    const std::string& dir, Metric metric, const VamanaBuildParams& bp,
    bool use_huge_pages, bool* self_described) {
  if (self_described != nullptr) *self_described = false;
  const std::string path = ManifestPath(dir);
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open " + path);
  uint32_t magic = 0, version = 0, bits1 = 0, bits2 = 0;
  uint64_t S = 0, n = 0, d = 0;
  if (!ReadPod(f.get(), &magic) || magic != kManifestMagic) {
    return Status::IOError(path + ": bad manifest magic");
  }
  if (!ReadPod(f.get(), &version) ||
      (version != kManifestVersion && version != kManifestVersionMeta)) {
    return Status::IOError(path + ": unsupported manifest version");
  }
  if (!ReadPod(f.get(), &S) || !ReadPod(f.get(), &n) || !ReadPod(f.get(), &d) ||
      !ReadPod(f.get(), &bits1) || !ReadPod(f.get(), &bits2) || S == 0 ||
      d == 0) {
    return Status::IOError(path + ": corrupt manifest header");
  }
  // A version-2 manifest overrides the caller's fallback configuration.
  Metric actual_metric = metric;
  VamanaBuildParams actual_bp = bp;
  if (version == kManifestVersionMeta) {
    IndexMeta meta;
    BLINK_RETURN_NOT_OK(detail::ReadIndexMeta(f.get(), &meta, path));
    actual_metric = meta.metric;
    actual_bp = meta.params;
    if (self_described != nullptr) *self_described = true;
  }
  // Bound every allocation below by what the file could actually hold: the
  // manifest stores S*d centroid floats and n member ids, so corrupt header
  // fields must fail with a Status like every other corruption, not OOM.
  std::error_code ec;
  const uint64_t fsize = std::filesystem::file_size(path, ec);
  if (ec || d > fsize / sizeof(float) || S > (fsize / sizeof(float)) / d ||
      n > fsize / sizeof(uint32_t)) {
    return Status::IOError(path + ": manifest header disagrees with size");
  }
  Partition part;
  part.centroids = MatrixF(S, d);
  if (!ReadAll(f.get(), part.centroids.data(), S * d * sizeof(float))) {
    return Status::IOError(path + ": truncated centroids");
  }
  part.shard_to_global.resize(S);
  part.global_to_shard.assign(n, UINT32_MAX);
  for (uint64_t s = 0; s < S; ++s) {
    uint64_t m = 0;
    if (!ReadPod(f.get(), &m) || m > n) {
      return Status::IOError(path + ": corrupt shard list header");
    }
    auto& members = part.shard_to_global[s];
    members.resize(m);
    if (!ReadAll(f.get(), members.data(), m * sizeof(uint32_t))) {
      return Status::IOError(path + ": truncated shard list");
    }
    for (uint32_t g : members) {
      if (g >= n || part.global_to_shard[g] != UINT32_MAX) {
        return Status::IOError(path + ": shard lists are not a partition");
      }
      part.global_to_shard[g] = static_cast<uint32_t>(s);
    }
  }
  for (uint64_t g = 0; g < n; ++g) {
    if (part.global_to_shard[g] == UINT32_MAX) {
      return Status::IOError(path + ": shard lists are not a partition");
    }
  }

  std::vector<std::unique_ptr<ShardedIndex::Shard>> shards(S);
  for (uint64_t s = 0; s < S; ++s) {
    const size_t m = part.shard_to_global[s].size();
    if (m == 0) continue;
    auto shard = LoadOgLvqIndex(ShardPrefix(dir, s), actual_metric, actual_bp,
                                use_huge_pages);
    if (!shard.ok()) return shard.status();
    if (shard.value()->size() != m || shard.value()->dim() != d) {
      return Status::IOError(ShardPrefix(dir, s) +
                             ": shard size/dim disagrees with manifest");
    }
    shards[s] = std::move(shard).value();
  }
  return std::make_unique<ShardedIndex>(std::move(shards), std::move(part),
                                        actual_metric, static_cast<int>(bits1),
                                        static_cast<int>(bits2));
}

}  // namespace blink
