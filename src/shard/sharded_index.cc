#include "shard/sharded_index.h"

#include <algorithm>
#include <cstring>

#include "simd/distance.h"
#include "util/timer.h"

namespace blink {

// ---------------------------------------------------------------------------
// ShardedSearcher: one warm Searcher per live shard plus merge scratch.
// ---------------------------------------------------------------------------
class ShardedIndex::ShardedSearcher : public Searcher {
 public:
  explicit ShardedSearcher(const ShardedIndex* index) : index_(index) {
    searchers_.resize(index_->shards_.size());
    for (uint32_t s : index_->live_shards_) {
      searchers_[s] = index_->shards_[s]->MakeSearcher();
    }
  }

  void Search(const float* query, size_t k, const SearchOptions& params,
              uint32_t* ids, float* dists, BatchStats* stats) override {
    const auto& live = index_->live_shards_;
    const MatrixF& centroids = index_->partition_.centroids;
    const size_t d = centroids.cols();

    // Rank live shards by centroid distance (same "lower is better"
    // convention as the storages: squared L2 or negated inner product).
    order_.clear();
    for (uint32_t s : live) {
      const float dist =
          index_->metric_ == Metric::kL2
              ? simd::L2Sqr(query, centroids.row(s), d)
              : simd::IpDist(query, centroids.row(s), d);
      order_.push_back({dist, s});
    }
    if (stats != nullptr) stats->distance_computations += order_.size();

    const size_t nprobe =
        params.nprobe_shards == 0
            ? order_.size()
            : std::min<size_t>(params.nprobe_shards, order_.size());
    std::partial_sort(order_.begin(), order_.begin() + nprobe, order_.end());

    // Probe + merge. Per-shard padded slots (kInvalidId / +inf) are
    // dropped here; the merged row is re-padded below.
    shard_ids_.resize(k);
    shard_dists_.resize(k);
    merged_.clear();
    for (size_t p = 0; p < nprobe; ++p) {
      const uint32_t s = order_[p].shard;
      index_->probe_counts_[s].fetch_add(1, std::memory_order_relaxed);
      searchers_[s]->Search(query, k, params, shard_ids_.data(),
                            shard_dists_.data(), stats);
      const auto& to_global = index_->partition_.shard_to_global[s];
      for (size_t j = 0; j < k; ++j) {
        if (shard_ids_[j] == kInvalidId) break;  // padding is a suffix
        merged_.push_back({shard_dists_[j], to_global[shard_ids_[j]]});
      }
    }
    const size_t keep = std::min(k, merged_.size());
    std::partial_sort(merged_.begin(), merged_.begin() + keep, merged_.end());

    merged_ids_.resize(keep);
    merged_dists_.resize(keep);
    for (size_t j = 0; j < keep; ++j) {
      merged_ids_[j] = merged_[j].id;
      merged_dists_[j] = merged_[j].dist;
    }
    WritePaddedRow(merged_ids_.data(), merged_dists_.data(), keep, k, ids,
                   dists);
  }

 private:
  struct Ranked {
    float dist;
    uint32_t shard;
    bool operator<(const Ranked& o) const {
      return dist < o.dist || (dist == o.dist && shard < o.shard);
    }
  };
  struct Merged {
    float dist;
    uint32_t id;  // global
    bool operator<(const Merged& o) const {
      return dist < o.dist || (dist == o.dist && id < o.id);
    }
  };

  const ShardedIndex* index_;
  std::vector<std::unique_ptr<Searcher>> searchers_;  // indexed by shard
  std::vector<Ranked> order_;
  std::vector<uint32_t> shard_ids_;
  std::vector<float> shard_dists_;
  std::vector<Merged> merged_;
  std::vector<uint32_t> merged_ids_;
  std::vector<float> merged_dists_;
};

// ---------------------------------------------------------------------------
// ShardedIndex.
// ---------------------------------------------------------------------------
ShardedIndex::ShardedIndex(std::vector<std::unique_ptr<Shard>> shards,
                           Partition partition, Metric metric, int bits1,
                           int bits2)
    : shards_(std::move(shards)),
      partition_(std::move(partition)),
      metric_(metric),
      bits1_(bits1),
      bits2_(bits2),
      probe_counts_(new std::atomic<uint64_t>[shards_.size()]) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    probe_counts_[s].store(0, std::memory_order_relaxed);
    if (shards_[s] != nullptr && shards_[s]->size() > 0) {
      live_shards_.push_back(static_cast<uint32_t>(s));
    }
  }
}

std::string ShardedIndex::name() const {
  std::string inner = live_shards_.empty()
                          ? std::string("empty")
                          : shards_[live_shards_[0]]->name();
  return "Sharded-S" + std::to_string(shards_.size()) + "[" + inner + "]";
}

size_t ShardedIndex::dim() const { return partition_.centroids.cols(); }

size_t ShardedIndex::memory_bytes() const {
  size_t total = partition_.centroids.size() * sizeof(float) +
                 partition_.global_to_shard.size() * sizeof(uint32_t);
  for (const auto& members : partition_.shard_to_global) {
    total += members.size() * sizeof(uint32_t);
  }
  for (uint32_t s : live_shards_) total += shards_[s]->memory_bytes();
  return total;
}

void ShardedIndex::SearchBatch(MatrixViewF queries, size_t k,
                               const SearchOptions& params, uint32_t* ids,
                               ThreadPool* pool) const {
  SearchBatchEx(queries, k, params, ids, /*dists=*/nullptr, /*stats=*/nullptr,
                pool);
}

void ShardedIndex::SearchBatchEx(MatrixViewF queries, size_t k,
                                 const SearchOptions& params, uint32_t* ids,
                                 float* dists, BatchStats* stats,
                                 ThreadPool* pool) const {
  const size_t workers = pool != nullptr ? pool->num_threads() : 1;
  RunBatchSlices(queries.rows, workers, pool, stats,
                 [&](size_t, size_t lo, size_t hi, BatchStats* slice_stats) {
                   ShardedSearcher searcher(this);
                   for (size_t qi = lo; qi < hi; ++qi) {
                     searcher.Search(
                         queries.row(qi), k, params, ids + qi * k,
                         dists != nullptr ? dists + qi * k : nullptr,
                         slice_stats);
                   }
                 });
}

std::unique_ptr<Searcher> ShardedIndex::MakeSearcher() const {
  return std::make_unique<ShardedSearcher>(this);
}

Status ShardedIndex::AttachMetadata(std::shared_ptr<const MetadataStore> md) {
  if (md == nullptr) {
    for (uint32_t s : live_shards_) {
      BLINK_RETURN_NOT_OK(shards_[s]->AttachMetadata(nullptr));
    }
    metadata_ = nullptr;
    return Status::OK();
  }
  if (md->size() != size()) {
    return Status::InvalidArgument(
        "metadata store has " + std::to_string(md->size()) +
        " rows but the sharded index holds " + std::to_string(size()) +
        " vectors");
  }
  // Slice the global store into per-shard local-id stores. Each probed
  // shard then runs its own filtered search (selectivity estimate and
  // widening against its local rows); the merge in ShardedSearcher sees
  // only surviving candidates, so no global re-filtering is needed.
  for (uint32_t s : live_shards_) {
    auto slice = std::make_shared<MetadataStore>(
        md->Slice(partition_.shard_to_global[s]));
    BLINK_RETURN_NOT_OK(shards_[s]->AttachMetadata(std::move(slice)));
  }
  metadata_ = std::move(md);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Parallel per-shard build.
// ---------------------------------------------------------------------------
std::unique_ptr<ShardedIndex> BuildShardedLvq(MatrixViewF data, Metric metric,
                                              const ShardedBuildParams& params,
                                              ThreadPool* pool) {
  Timer timer;
  Partition partition = PartitionDataset(data, params.partition, pool);
  const size_t S = partition.num_shards();
  const size_t d = data.cols;

  std::vector<std::unique_ptr<ShardedIndex::Shard>> shards(S);
  auto build_shard = [&](size_t s, ThreadPool* shard_pool) {
    const auto& members = partition.shard_to_global[s];
    if (members.empty()) return;
    MatrixF rows(members.size(), d);
    for (size_t l = 0; l < members.size(); ++l) {
      std::memcpy(rows.row(l), data.row(members[l]), d * sizeof(float));
    }
    shards[s] = BuildOgLvq(rows, metric, params.bits1, params.bits2,
                           params.graph, shard_pool);
  };

  if (S == 1) {
    build_shard(0, pool);  // nothing to parallelize across; use the pool
  } else if (pool != nullptr) {
    // One task per shard, each built single-threaded: the parallelism is
    // across shards. Deterministic for any thread count (shard builds are
    // independent and each is internally deterministic).
    pool->ParallelFor(S, [&](size_t s) { build_shard(s, nullptr); });
  } else {
    for (size_t s = 0; s < S; ++s) build_shard(s, nullptr);
  }

  auto index = std::make_unique<ShardedIndex>(
      std::move(shards), std::move(partition), metric, params.bits1,
      params.bits2);
  index->set_build_seconds(timer.Seconds());
  return index;
}

}  // namespace blink
