// Dataset partitioning for the sharded index (DESIGN.md D8).
//
// A Partition splits [0, n) into S disjoint shards plus the global<->local
// id remap the sharded search needs: shard-local result ids are translated
// back to global ids during the merge. Two methods:
//
//   kBalancedKMeans — k-means centroids (cluster/kmeans) followed by a
//       deterministic greedy capacity-bounded assignment, so shards are
//       both geometrically coherent (centroid probing prunes well) and
//       balanced (no shard exceeds ceil(n/S) * (1 + balance_slack), which
//       bounds per-shard build time and memory).
//   kRoundRobin — shard = i mod S. The fallback when geometry is useless
//       (adversarial data) or when reproducible uniform shards are wanted;
//       centroid probing degrades to probing all shards.
//
// Centroids are always recomputed as the mean of the members actually
// assigned (after balancing / for round-robin), so probe-time centroid
// distances reflect the shards as built. Deterministic given the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "util/matrix.h"
#include "util/thread_pool.h"

namespace blink {

enum class PartitionMethod {
  kBalancedKMeans,
  kRoundRobin,
};

struct PartitionerParams {
  size_t num_shards = 4;
  PartitionMethod method = PartitionMethod::kBalancedKMeans;
  uint64_t seed = 0x5eed;
  size_t max_kmeans_iters = 15;
  /// Max shard size = ceil(n / S) * (1 + balance_slack).
  double balance_slack = 0.15;
  /// k-means trains on at most this many rows (uniform subsample).
  size_t train_sample = 100000;
};

/// A disjoint partition of [0, n) into S shards with the id remap.
struct Partition {
  MatrixF centroids;  ///< S x d, mean of each shard's members
  /// shard -> ascending global ids of its members. shard_to_global[s][l]
  /// is the global id of shard s's local row l.
  std::vector<std::vector<uint32_t>> shard_to_global;
  std::vector<uint32_t> global_to_shard;  ///< n, shard of each global id

  size_t num_shards() const { return shard_to_global.size(); }
  size_t total_size() const { return global_to_shard.size(); }
};

/// Splits `data` into params.num_shards shards. Every row lands in exactly
/// one shard; shards may be empty only when n < num_shards.
Partition PartitionDataset(MatrixViewF data, const PartitionerParams& params,
                           ThreadPool* pool = nullptr);

}  // namespace blink
