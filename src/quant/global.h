// Global and per-dimension scalar quantization — the paper's main ablation
// baselines against LVQ (Figs. 2, 4, 5, 6, 11, 12).
//
// Both center the data with the dataset mean (so the comparison with LVQ
// isolates the *bounds* choice), then quantize with:
//   - kGlobal:       one (l, u) pair for the entire dataset, or
//   - kPerDimension: one (l_j, u_j) pair per dimension.
// Neither stores per-vector constants, so their footprint is slightly
// smaller than LVQ's (the paper reports LVQ-8's footprint as ~5% larger
// than global-8 for deep-96).
//
// An optional second level quantizes the residual with the (global or
// per-dimension) step deduced from the first level, mirroring LVQ-B1xB2
// ("global-quant-4x4" in Fig. 12).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "quant/packing.h"
#include "quant/scalar.h"
#include "util/matrix.h"
#include "util/memory.h"
#include "util/thread_pool.h"

namespace blink {

enum class GlobalMode {
  kGlobal,        ///< single bounds for the whole dataset
  kPerDimension,  ///< bounds per dimension
};

class GlobalDataset {
 public:
  struct Options {
    int bits = 8;
    int bits2 = 0;  ///< 0 = one level; >0 adds a residual level.
    GlobalMode mode = GlobalMode::kGlobal;
    size_t padding = 0;  ///< codes-only blobs; 0 = tightly packed.
    bool use_huge_pages = true;
  };

  GlobalDataset() = default;

  static GlobalDataset Encode(MatrixViewF data, const Options& opts,
                              ThreadPool* pool = nullptr);

  size_t size() const { return n_; }
  size_t dim() const { return d_; }
  int bits() const { return bits_; }
  int bits2() const { return bits2_; }
  GlobalMode mode() const { return mode_; }
  const std::vector<float>& mean() const { return mean_; }

  /// The per-dimension quantizers (size 1 in kGlobal mode).
  const std::vector<ScalarQuantizer>& quantizers() const { return quants_; }
  const ScalarQuantizer& quantizer(size_t j) const {
    return mode_ == GlobalMode::kGlobal ? quants_[0] : quants_[j];
  }

  const uint8_t* codes(size_t i) const { return blob_.data() + i * stride_; }
  uint32_t code(size_t i, size_t j) const { return UnpackCode(codes(i), j, bits_); }
  const uint8_t* residual_codes(size_t i) const {
    return residuals_.data() + i * residual_stride_;
  }

  size_t vector_footprint() const { return stride_ + residual_stride_; }
  double compression_ratio() const {
    return static_cast<double>(d_) * 32.0 /
           (8.0 * static_cast<double>(vector_footprint()));
  }
  size_t memory_bytes() const {
    return n_ * (stride_ + residual_stride_) + quants_.size() * sizeof(ScalarQuantizer);
  }

  /// Level-1-only reconstruction in centered space.
  void DecodeCentered(size_t i, float* out) const;
  /// Full reconstruction (both levels if present) in original space.
  void Decode(size_t i, float* out) const;
  /// Full reconstruction in centered space.
  void DecodeCenteredFull(size_t i, float* out) const;

  void PrefetchVector(size_t i) const {
    const uint8_t* p = codes(i);
    for (size_t off = 0; off < stride_; off += 64) {
      __builtin_prefetch(p + off, 0, 3);
    }
  }

 private:
  size_t n_ = 0;
  size_t d_ = 0;
  int bits_ = 8;
  int bits2_ = 0;
  GlobalMode mode_ = GlobalMode::kGlobal;
  size_t stride_ = 0;
  size_t residual_stride_ = 0;
  std::vector<float> mean_;
  std::vector<ScalarQuantizer> quants_;      // level 1
  std::vector<ScalarQuantizer> res_quants_;  // level 2 (deduced; cached)
  Arena blob_;
  Arena residuals_;
};

}  // namespace blink
