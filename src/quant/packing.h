// Bit-packing of integer quantization codes.
//
// Fast paths exist for the SIMD-kernel layouts the paper uses (B = 8: one
// byte per code; B = 4: two codes per byte, low nibble first). A generic
// LSB-first bitstream path supports any B in [1, 16] for the analysis
// experiments that sweep the bit budget (Figs. 5, 6, 11).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace blink {

/// Bytes needed to store d codes of `bits` bits each (unpadded).
constexpr size_t PackedBytes(size_t d, int bits) {
  return (d * static_cast<size_t>(bits) + 7) / 8;
}

/// Writes code (< 2^bits) at logical index i of an LSB-first bitstream.
/// The destination buffer must be zero-initialized.
inline void PackCode(uint8_t* buf, size_t i, int bits, uint32_t code) {
  assert(bits >= 1 && bits <= 16);
  assert(code < (1u << bits) || bits == 16);
  if (bits == 8) {
    buf[i] = static_cast<uint8_t>(code);
    return;
  }
  if (bits == 16) {
    buf[2 * i] = static_cast<uint8_t>(code & 0xFF);
    buf[2 * i + 1] = static_cast<uint8_t>(code >> 8);
    return;
  }
  if (bits == 4) {
    uint8_t& b = buf[i >> 1];
    if (i & 1) {
      b = static_cast<uint8_t>((b & 0x0F) | (code << 4));
    } else {
      b = static_cast<uint8_t>((b & 0xF0) | code);
    }
    return;
  }
  const size_t bit_pos = i * static_cast<size_t>(bits);
  size_t byte = bit_pos >> 3;
  int shift = static_cast<int>(bit_pos & 7);
  uint32_t v = code << shift;
  int remaining = bits + shift;
  while (remaining > 0) {
    buf[byte] = static_cast<uint8_t>(buf[byte] | (v & 0xFF));
    v >>= 8;
    remaining -= 8;
    ++byte;
  }
}

/// Reads the code at logical index i of an LSB-first bitstream.
inline uint32_t UnpackCode(const uint8_t* buf, size_t i, int bits) {
  assert(bits >= 1 && bits <= 16);
  if (bits == 8) return buf[i];
  if (bits == 16) {
    return static_cast<uint32_t>(buf[2 * i]) |
           (static_cast<uint32_t>(buf[2 * i + 1]) << 8);
  }
  if (bits == 4) {
    const uint8_t b = buf[i >> 1];
    return (i & 1) ? (b >> 4) : (b & 0x0F);
  }
  const size_t bit_pos = i * static_cast<size_t>(bits);
  const size_t byte = bit_pos >> 3;
  const int shift = static_cast<int>(bit_pos & 7);
  // The code spans at most bits + shift <= 23 bits, i.e. up to 3 bytes.
  // Only touch bytes the code actually spans so reads stay in bounds.
  const int spanned = bits + shift;
  uint32_t v = static_cast<uint32_t>(buf[byte]);
  if (spanned > 8) v |= static_cast<uint32_t>(buf[byte + 1]) << 8;
  if (spanned > 16) v |= static_cast<uint32_t>(buf[byte + 2]) << 16;
  return (v >> shift) & ((1u << bits) - 1u);
}

}  // namespace blink
