#include "quant/lvq.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

namespace blink {

namespace {

/// Mean of all rows; the "global first moment" LVQ centers with.
std::vector<float> ComputeMean(MatrixViewF data,
                               [[maybe_unused]] ThreadPool* pool) {
  const size_t n = data.rows, d = data.cols;
  std::vector<float> mean(d, 0.0f);
  if (n == 0) return mean;
  // Accumulate in double to keep precision over large n.
  std::vector<double> acc(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const float* row = data.row(i);
    for (size_t j = 0; j < d; ++j) acc[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) {
    mean[j] = static_cast<float>(acc[j] / static_cast<double>(n));
  }
  return mean;
}

}  // namespace

LvqDataset LvqDataset::Encode(MatrixViewF data, const Options& opts,
                              ThreadPool* pool) {
  return EncodeWithMean(data, ComputeMean(data, pool), opts, pool);
}

LvqDataset LvqDataset::EncodeWithMean(MatrixViewF data,
                                      const std::vector<float>& mean,
                                      const Options& opts, ThreadPool* pool) {
  assert(opts.bits >= 1 && opts.bits <= 16);
  assert(mean.size() == data.cols);
  LvqDataset ds;
  ds.n_ = data.rows;
  ds.d_ = data.cols;
  ds.bits_ = opts.bits;
  ds.padding_ = opts.padding;
  ds.mean_ = mean;
  const size_t raw = kHeaderBytes + PackedBytes(ds.d_, ds.bits_);
  ds.stride_ = LvqPaddedStride(raw, opts.padding);
  ds.blob_ = Arena(ds.n_ * ds.stride_, opts.use_huge_pages);

  auto encode_row = [&](size_t i) {
    const float* row = data.row(i);
    uint8_t* out = ds.blob_.data() + i * ds.stride_;
    // Per-vector bounds over the centered components (Eq. 3).
    float lo = std::numeric_limits<float>::infinity();
    float hi = -std::numeric_limits<float>::infinity();
    for (size_t j = 0; j < ds.d_; ++j) {
      const float v = row[j] - mean[j];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    // Constants are stored in float16 (B_const = 16, Eq. 4); encoding must
    // use the *stored* (rounded) bounds so codes and decoder agree. Widen
    // the rounded bounds to cover the true range so the min/max components
    // stay in range and reconstruct with zero error (paper Fig. 16).
    Float16 l16(lo), u16(hi);
    if (static_cast<float>(l16) > lo) l16 = NextFloat16Down(l16);
    if (static_cast<float>(u16) < hi) u16 = NextFloat16Up(u16);
    std::memcpy(out, &l16, 2);
    std::memcpy(out + 2, &u16, 2);
    const ScalarQuantizer q(ds.bits_, l16, u16);
    uint8_t* codes = out + kHeaderBytes;
    // Blob arrives zeroed from the Arena; PackCode ORs into it.
    for (size_t j = 0; j < ds.d_; ++j) {
      PackCode(codes, j, ds.bits_, q.Encode(row[j] - mean[j]));
    }
  };

  if (pool != nullptr) {
    pool->ParallelFor(ds.n_, encode_row);
  } else {
    for (size_t i = 0; i < ds.n_; ++i) encode_row(i);
  }
  return ds;
}

LvqDataset LvqDataset::FromRaw(size_t n, size_t d, int bits, size_t padding,
                               std::vector<float> mean, const uint8_t* blob,
                               size_t blob_bytes, bool use_huge_pages) {
  assert(mean.size() == d);
  LvqDataset ds;
  ds.n_ = n;
  ds.d_ = d;
  ds.bits_ = bits;
  ds.padding_ = padding;
  ds.mean_ = std::move(mean);
  ds.stride_ = LvqPaddedStride(kHeaderBytes + PackedBytes(d, bits), padding);
  assert(blob_bytes == n * ds.stride_ && "blob size mismatch");
  ds.blob_ = Arena(blob_bytes, use_huge_pages);
  if (blob_bytes > 0) std::memcpy(ds.blob_.data(), blob, blob_bytes);
  return ds;
}

LvqDataset LvqDataset::FromExternal(size_t n, size_t d, int bits,
                                    size_t padding, std::vector<float> mean,
                                    const uint8_t* blob) {
  assert(mean.size() == d);
  LvqDataset ds;
  ds.n_ = n;
  ds.d_ = d;
  ds.bits_ = bits;
  ds.padding_ = padding;
  ds.mean_ = std::move(mean);
  ds.stride_ = LvqPaddedStride(kHeaderBytes + PackedBytes(d, bits), padding);
  ds.ext_blob_ = blob;
  return ds;
}

LvqDataset2 LvqDataset2::FromRaw(LvqDataset level1, int bits2,
                                 const uint8_t* residuals,
                                 size_t residual_bytes, bool use_huge_pages) {
  LvqDataset2 ds;
  ds.level1_ = std::move(level1);
  ds.bits2_ = bits2;
  ds.residual_stride_ = PackedBytes(ds.level1_.dim(), bits2);
  assert(residual_bytes == ds.level1_.size() * ds.residual_stride_);
  ds.residuals_ = Arena(residual_bytes, use_huge_pages);
  if (residual_bytes > 0) {
    std::memcpy(ds.residuals_.data(), residuals, residual_bytes);
  }
  return ds;
}

LvqDataset2 LvqDataset2::FromExternal(LvqDataset level1, int bits2,
                                      const uint8_t* residuals) {
  LvqDataset2 ds;
  ds.level1_ = std::move(level1);
  ds.bits2_ = bits2;
  ds.residual_stride_ = PackedBytes(ds.level1_.dim(), bits2);
  ds.ext_residuals_ = residuals;
  return ds;
}

void LvqDataset::DecodeCentered(size_t i, float* out) const {
  const LvqConstants c = constants(i);
  const uint8_t* cs = codes(i);
  for (size_t j = 0; j < d_; ++j) {
    out[j] = c.delta * static_cast<float>(UnpackCode(cs, j, bits_)) + c.lower;
  }
}

void LvqDataset::Decode(size_t i, float* out) const {
  DecodeCentered(i, out);
  for (size_t j = 0; j < d_; ++j) out[j] += mean_[j];
}

LvqDataset2 LvqDataset2::Encode(MatrixViewF data, const Options& opts,
                                ThreadPool* pool) {
  LvqDataset2 ds;
  LvqDataset::Options l1opts;
  l1opts.bits = opts.bits1;
  l1opts.padding = opts.padding;
  l1opts.use_huge_pages = opts.use_huge_pages;
  ds.level1_ = LvqDataset::EncodeWithMean(data, ComputeMean(data, pool),
                                          l1opts, pool);
  ds.bits2_ = opts.bits2;
  const size_t n = ds.level1_.size(), d = ds.level1_.dim();
  ds.residual_stride_ = PackedBytes(d, opts.bits2);
  ds.residuals_ = Arena(n * ds.residual_stride_, opts.use_huge_pages);

  const auto& mean = ds.level1_.mean();
  auto encode_row = [&](size_t i) {
    const float* row = data.row(i);
    const LvqConstants c = ds.level1_.constants(i);
    // Residual quantizer over [-Delta/2, Delta/2) — deduced, not stored.
    const ScalarQuantizer rq = ResidualQuantizer(c.delta, ds.bits2_);
    uint8_t* out = ds.residuals_.data() + i * ds.residual_stride_;
    const uint8_t* l1codes = ds.level1_.codes(i);
    for (size_t j = 0; j < d; ++j) {
      const float level1 =
          c.delta * static_cast<float>(UnpackCode(l1codes, j, ds.level1_.bits())) +
          c.lower;
      const float r = (row[j] - mean[j]) - level1;  // r = x - mu - Q(x)
      PackCode(out, j, ds.bits2_, rq.Encode(r));
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(n, encode_row);
  } else {
    for (size_t i = 0; i < n; ++i) encode_row(i);
  }
  return ds;
}

void LvqDataset2::DecodeCentered(size_t i, float* out) const {
  level1_.DecodeCentered(i, out);
  const LvqConstants c = level1_.constants(i);
  const ScalarQuantizer rq = ResidualQuantizer(c.delta, bits2_);
  const uint8_t* rc = residual_codes(i);
  for (size_t j = 0; j < dim(); ++j) {
    out[j] += rq.Decode(UnpackCode(rc, j, bits2_));
  }
}

void LvqDataset2::Decode(size_t i, float* out) const {
  DecodeCentered(i, out);
  const auto& mean = level1_.mean();
  for (size_t j = 0; j < dim(); ++j) out[j] += mean[j];
}

}  // namespace blink
