// Uniform scalar quantization (paper Eq. 1).
//
//   Q(x; B, l, u) = Delta * floor((x - l)/Delta + 1/2) + l,
//   Delta = (u - l) / (2^B - 1).
//
// This is the primitive underneath every quantizer in the library: LVQ
// computes (l, u) per vector, global quantization computes them once for
// the dataset, per-dimension quantization computes them per dimension, and
// the two-level residual uses it with bounds (-Delta/2, Delta/2).
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

namespace blink {

/// Number of quantization levels for a B-bit code: 2^B - 1 steps.
constexpr uint32_t MaxCode(int bits) {
  return bits >= 32 ? 0xFFFFFFFFu : ((1u << bits) - 1u);
}

/// One-dimensional uniform quantizer over [l, u] with B-bit codes.
/// Encode maps a float to an integer code in [0, 2^B - 1]; Decode maps a
/// code back to the reconstruction level. Values outside [l, u] clamp to
/// the edge codes (needed because stored bounds are rounded to float16).
class ScalarQuantizer {
 public:
  ScalarQuantizer() = default;
  ScalarQuantizer(int bits, float lower, float upper)
      : bits_(bits), lower_(lower), upper_(upper) {
    assert(bits >= 1 && bits <= 16);
    const float range = upper - lower;
    delta_ = range > 0.0f ? range / static_cast<float>(MaxCode(bits)) : 0.0f;
    inv_delta_ = delta_ > 0.0f ? 1.0f / delta_ : 0.0f;
  }

  int bits() const { return bits_; }
  float lower() const { return lower_; }
  float upper() const { return upper_; }
  /// The quantization step Delta from Eq. 1.
  float delta() const { return delta_; }

  /// Integer code for x, clamped to [0, 2^B - 1].
  uint32_t Encode(float x) const {
    if (delta_ == 0.0f) return 0;
    const float t = (x - lower_) * inv_delta_ + 0.5f;
    const int32_t c = static_cast<int32_t>(std::floor(t));
    return static_cast<uint32_t>(
        std::clamp<int32_t>(c, 0, static_cast<int32_t>(MaxCode(bits_))));
  }

  /// Reconstruction level of a code.
  float Decode(uint32_t code) const {
    assert(code <= MaxCode(bits_));
    return delta_ * static_cast<float>(code) + lower_;
  }

  /// Q(x) from Eq. 1: quantize-and-reconstruct in one step.
  float Quantize(float x) const { return Decode(Encode(x)); }

  /// Worst-case reconstruction error for in-range values: Delta / 2.
  float max_error() const { return delta_ * 0.5f; }

 private:
  int bits_ = 8;
  float lower_ = 0.0f;
  float upper_ = 0.0f;
  float delta_ = 0.0f;
  float inv_delta_ = 0.0f;
};

/// Quantizer for first-level residuals (paper Eq. 6): the level-1 error is
/// uniform in [-Delta/2, Delta/2), so the residual quantizer is
/// Q(x; B2, -Delta/2, Delta/2) with no extra stored constants.
inline ScalarQuantizer ResidualQuantizer(float level1_delta, int bits2) {
  return ScalarQuantizer(bits2, -level1_delta * 0.5f, level1_delta * 0.5f);
}

}  // namespace blink
