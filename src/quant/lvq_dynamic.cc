#include "quant/lvq_dynamic.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

#include "quant/scalar.h"
#include "util/float16.h"

namespace blink {

DynamicLvqDataset::DynamicLvqDataset(size_t dim, Options opts)
    : d_(dim), opts_(std::move(opts)) {
  assert(opts_.bits1 >= 1 && opts_.bits1 <= 16);
  assert(opts_.bits2 >= 0 && opts_.bits2 <= 16);
  assert(opts_.mean.empty() || opts_.mean.size() == dim);
  if (opts_.mean.empty()) opts_.mean.assign(dim, 0.0f);
  stride_ = LvqPaddedStride(
      LvqDataset::kHeaderBytes + PackedBytes(d_, opts_.bits1), opts_.padding);
  residual_stride_ = opts_.bits2 > 0 ? PackedBytes(d_, opts_.bits2) : 0;
}

void DynamicLvqDataset::Grow(size_t new_capacity) {
  if (new_capacity <= capacity_) return;
  Arena bigger(new_capacity * stride_, opts_.use_huge_pages);
  if (capacity_ > 0) {
    std::memcpy(bigger.data(), blob_.data(), capacity_ * stride_);
  }
  blob_ = std::move(bigger);
  if (residual_stride_ > 0) {
    Arena bigger2(new_capacity * residual_stride_, opts_.use_huge_pages);
    if (capacity_ > 0) {
      std::memcpy(bigger2.data(), residuals_.data(),
                  capacity_ * residual_stride_);
    }
    residuals_ = std::move(bigger2);
  }
  capacity_ = new_capacity;
}

void DynamicLvqDataset::EncodeInto(uint32_t slot, const float* vec) {
  assert(slot < capacity_);
  const std::vector<float>& mean = opts_.mean;
  uint8_t* out = blob_.data() + slot * stride_;
  // Per-vector bounds over the centered components (Eq. 3).
  float lo = std::numeric_limits<float>::infinity();
  float hi = -std::numeric_limits<float>::infinity();
  for (size_t j = 0; j < d_; ++j) {
    const float v = vec[j] - mean[j];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // Same bound widening as the static encoder (quant/lvq.cc): encode with
  // the *stored* (rounded) float16 bounds so codes and decoder agree.
  Float16 l16(lo), u16(hi);
  if (static_cast<float>(l16) > lo) l16 = NextFloat16Down(l16);
  if (static_cast<float>(u16) < hi) u16 = NextFloat16Up(u16);
  std::memcpy(out, &l16, 2);
  std::memcpy(out + 2, &u16, 2);
  const ScalarQuantizer q(opts_.bits1, l16, u16);
  uint8_t* codes = out + LvqDataset::kHeaderBytes;
  // Recycled slots hold stale codes and PackCode ORs into its buffer for
  // the generic bit widths, so clear the code region first.
  std::memset(codes, 0, stride_ - LvqDataset::kHeaderBytes);
  for (size_t j = 0; j < d_; ++j) {
    PackCode(codes, j, opts_.bits1, q.Encode(vec[j] - mean[j]));
  }
  if (residual_stride_ == 0) return;

  // Level-2 residual r = x - mu - Q(x), quantized over the deduced range
  // [-Delta/2, Delta/2) (Eq. 6).
  const LvqConstants c = constants(slot);
  const ScalarQuantizer rq = ResidualQuantizer(c.delta, opts_.bits2);
  uint8_t* rout = residuals_.data() + slot * residual_stride_;
  std::memset(rout, 0, residual_stride_);
  for (size_t j = 0; j < d_; ++j) {
    const float level1 =
        c.delta * static_cast<float>(UnpackCode(codes, j, opts_.bits1)) +
        c.lower;
    PackCode(rout, j, opts_.bits2, rq.Encode((vec[j] - mean[j]) - level1));
  }
}

LvqConstants DynamicLvqDataset::constants(size_t i) const {
  const uint8_t* b = blob(i);
  Float16 l16, u16;
  __builtin_memcpy(&l16, b, 2);
  __builtin_memcpy(&u16, b + 2, 2);
  const float l = l16, u = u16;
  const float range = u - l;
  const float delta =
      range > 0.0f ? range / static_cast<float>(MaxCode(opts_.bits1)) : 0.0f;
  return {delta, l};
}

void DynamicLvqDataset::DecodeCentered(size_t i, float* out) const {
  const LvqConstants c = constants(i);
  const uint8_t* cs = codes(i);
  for (size_t j = 0; j < d_; ++j) {
    out[j] =
        c.delta * static_cast<float>(UnpackCode(cs, j, opts_.bits1)) + c.lower;
  }
  if (residual_stride_ == 0) return;
  const ScalarQuantizer rq = ResidualQuantizer(c.delta, opts_.bits2);
  const uint8_t* rc = residual_codes(i);
  for (size_t j = 0; j < d_; ++j) {
    out[j] += rq.Decode(UnpackCode(rc, j, opts_.bits2));
  }
}

void DynamicLvqDataset::Decode(size_t i, float* out) const {
  DecodeCentered(i, out);
  const std::vector<float>& mean = opts_.mean;
  for (size_t j = 0; j < d_; ++j) out[j] += mean[j];
}

void DynamicLvqDataset::RestoreRows(const uint8_t* blob,
                                    const uint8_t* residuals, size_t n) {
  assert(n <= capacity_);
  if (n == 0) return;
  std::memcpy(blob_.data(), blob, n * stride_);
  if (residual_stride_ > 0) {
    std::memcpy(residuals_.data(), residuals, n * residual_stride_);
  }
}

std::vector<float> DynamicLvqDataset::SampleMean(MatrixViewF sample,
                                                 size_t max_rows) {
  const size_t n = std::min(sample.rows, max_rows);
  const size_t d = sample.cols;
  std::vector<float> mean(d, 0.0f);
  if (n == 0) return mean;
  std::vector<double> acc(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const float* row = sample.row(i);
    for (size_t j = 0; j < d; ++j) acc[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) {
    mean[j] = static_cast<float>(acc[j] / static_cast<double>(n));
  }
  return mean;
}

}  // namespace blink
