#include "quant/leanvec.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace blink {

Result<LeanVecModel> TrainLeanVec(MatrixViewF sample, size_t reduced_dim,
                                  size_t max_sample_rows) {
  const size_t d = sample.cols;
  if (sample.rows == 0 || d == 0) {
    return Status::InvalidArgument("LeanVec: training sample is empty");
  }
  if (reduced_dim == 0) reduced_dim = DefaultLeanVecDim(d);
  if (reduced_dim > d) {
    return Status::InvalidArgument(
        "LeanVec: reduced_dim " + std::to_string(reduced_dim) +
        " exceeds data dimension " + std::to_string(d));
  }
  const size_t n = std::min(sample.rows, max_sample_rows);

  LeanVecModel model;
  model.mean.assign(d, 0.0f);
  {
    std::vector<double> acc(d, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const float* row = sample.row(i);
      for (size_t j = 0; j < d; ++j) acc[j] += row[j];
    }
    for (size_t j = 0; j < d; ++j) {
      model.mean[j] = static_cast<float>(acc[j] / static_cast<double>(n));
      if (!std::isfinite(model.mean[j])) {
        return Status::InvalidArgument(
            "LeanVec: training sample contains non-finite values");
      }
    }
  }

  MatrixF centered(n, d);
  for (size_t i = 0; i < n; ++i) {
    const float* src = sample.row(i);
    float* dst = centered.row(i);
    for (size_t j = 0; j < d; ++j) {
      if (!std::isfinite(src[j])) {
        return Status::InvalidArgument(
            "LeanVec: training sample contains non-finite values");
      }
      dst[j] = src[j] - model.mean[j];
    }
  }

  // Sample covariance (unnormalized — scale does not move eigenvectors),
  // then its eigenbasis. The covariance is symmetric PSD, so JacobiSvd's V
  // columns are its eigenvectors and s its eigenvalues; V stays orthonormal
  // even for zero eigenvalues (rank-deficient samples), unlike U.
  const MatrixF cov = GramProduct(centered, centered);
  const SvdResult svd = JacobiSvd(cov);

  std::vector<size_t> order(d);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return svd.s[a] > svd.s[b]; });

  // Top-d' eigenvectors become the projection columns, each validated and
  // re-normalized to unit norm — a degenerate column fails loudly here
  // rather than silently poisoning every projected vector.
  model.proj = MatrixF(d, reduced_dim);
  for (size_t c = 0; c < reduced_dim; ++c) {
    const size_t src_col = order[c];
    double norm2 = 0.0;
    for (size_t i = 0; i < d; ++i) {
      const float v = svd.v(i, src_col);
      if (!std::isfinite(v)) {
        return Status::Internal(
            "LeanVec: SVD produced a non-finite basis column " +
            std::to_string(c));
      }
      norm2 += static_cast<double>(v) * v;
    }
    if (std::fabs(norm2 - 1.0) > 1e-2) {
      return Status::Internal(
          "LeanVec: SVD produced a degenerate basis column " +
          std::to_string(c) + " (norm^2 " + std::to_string(norm2) + ")");
    }
    const float scale = static_cast<float>(1.0 / std::sqrt(norm2));
    for (size_t i = 0; i < d; ++i) {
      model.proj(i, c) = svd.v(i, src_col) * scale;
    }
  }
  return model;
}

void LeanVecProject(const LeanVecModel& model, const float* x, float* y) {
  const size_t d = model.dim();
  const size_t dp = model.reduced_dim();
  for (size_t j = 0; j < dp; ++j) y[j] = 0.0f;
  for (size_t i = 0; i < d; ++i) {
    const float xi = x[i] - model.mean[i];
    const float* row = model.proj.row(i);
    for (size_t j = 0; j < dp; ++j) y[j] += xi * row[j];
  }
}

void LeanVecProjectQuery(const LeanVecModel& model, Metric metric,
                         const float* q, float* y) {
  if (metric == Metric::kL2) {
    LeanVecProject(model, q, y);
    return;
  }
  // IP: project the raw query. <q, x> = <q, mean> + <q, x - mean>, and the
  // first term is the same for every candidate.
  RowTimesMatrix(q, model.proj, y);
}

MatrixF LeanVecProjectAll(const LeanVecModel& model, MatrixViewF data,
                          ThreadPool* pool) {
  MatrixF out(data.rows, model.reduced_dim());
  auto project_row = [&](size_t i) {
    LeanVecProject(model, data.row(i), out.row(i));
  };
  if (pool != nullptr) {
    pool->ParallelFor(data.rows, project_row);
  } else {
    for (size_t i = 0; i < data.rows; ++i) project_row(i);
  }
  return out;
}

Result<LeanVecStorage> BuildLeanVecStorage(MatrixViewF data, Metric metric,
                                           size_t reduced_dim,
                                           ThreadPool* pool) {
  Result<LeanVecModel> model = TrainLeanVec(data, reduced_dim);
  if (!model.ok()) return model.status();
  MatrixF projected = LeanVecProjectAll(model.value(), data, pool);
  FloatStorage primary(MatrixViewF(projected), metric);
  FloatStorage secondary(data, metric);
  return LeanVecStorage(std::move(model).value(), std::move(primary),
                        std::move(secondary));
}

Result<LeanVecLvqStorage> BuildLeanVecLvqStorage(MatrixViewF data,
                                                 Metric metric,
                                                 size_t reduced_dim,
                                                 ThreadPool* pool) {
  Result<LeanVecModel> model = TrainLeanVec(data, reduced_dim);
  if (!model.ok()) return model.status();
  MatrixF projected = LeanVecProjectAll(model.value(), data, pool);
  LvqStorage primary(MatrixViewF(projected), metric, /*bits=*/8,
                     /*padding=*/32, pool);
  LvqStorage secondary(data, metric, /*bits=*/8, /*padding=*/32, pool);
  return LeanVecLvqStorage(std::move(model).value(), std::move(primary),
                           std::move(secondary));
}

}  // namespace blink
