// LeanVec: learned dimensionality reduction as a search primary, with
// full-dimension re-ranking through the Reranker seam (DESIGN.md D14,
// ROADMAP item 1).
//
// High-dimensional embedding workloads (d = 512–1536) pay the full
// per-hop distance cost during graph traversal even though the intrinsic
// dimensionality of the data is far lower. LeanVec searches in a learned
// d -> d' projection (the top-d' principal directions of a training
// sample, computed with the existing JacobiSvd) and re-scores the
// candidate window against full-dimension vectors — exactly the paper's
// two-level pattern (Sec. 3.2) with "fewer dimensions" playing the role
// of "fewer bits".
//
// LeanVecStorageT composes two existing storages behind the standard
// storage concept (graph/storage.h):
//
//   primary    d'-dimensional projections — traversal Distance()
//   secondary  full-dimension vectors     — FullDistance() re-ranking
//
// so the graph search, builder, serializer and Reranker seam all apply
// unchanged. The shipped flavors are float32/float32 (static-leanvec) and
// LVQ-8/LVQ-8 (static-leanvec-lvq).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/storage.h"
#include "util/linalg.h"
#include "util/matrix.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace blink {

/// The learned projection: y = (x - mean) * proj, proj is (d x d')
/// column-orthonormal (top-d' eigenvectors of the sample covariance).
struct LeanVecModel {
  std::vector<float> mean;  ///< d floats
  MatrixF proj;             ///< d x d', row-major

  size_t dim() const { return mean.size(); }
  size_t reduced_dim() const { return proj.cols(); }
};

/// Default d' when the spec leaves it 0: d/4, floored at 1.
inline size_t DefaultLeanVecDim(size_t d) {
  return d >= 4 ? d / 4 : 1;
}

/// Learns a LeanVec projection from (a sample of) the data: mean, sample
/// covariance via GramProduct, JacobiSvd, top-d' eigenvector selection.
/// Fails with a Status — never silent NaN columns — when the sample is
/// empty or non-finite, when reduced_dim is out of (0, d], or when the
/// SVD returns a degenerate basis column (validated per column: finite
/// entries, unit norm). Rank-deficient samples (duplicate rows,
/// zero-variance dims) are fine: one-sided Jacobi keeps V orthonormal
/// even for zero eigenvalues, and the validation proves it.
/// `max_sample_rows` caps the covariance cost on large datasets.
Result<LeanVecModel> TrainLeanVec(MatrixViewF sample, size_t reduced_dim,
                                  size_t max_sample_rows = 16384);

/// y = (x - mean) * proj: projects one data vector into d' space.
void LeanVecProject(const LeanVecModel& model, const float* x, float* y);

/// Projects a query for the primary search. L2 centers like the data
/// (shifts cancel); IP projects the raw query — the dropped <q, mean>
/// term is query-constant and cannot change the candidate order.
void LeanVecProjectQuery(const LeanVecModel& model, Metric metric,
                         const float* q, float* y);

/// Projects every row of `data` (centered) into a new (n x d') matrix.
MatrixF LeanVecProjectAll(const LeanVecModel& model, MatrixViewF data,
                          ThreadPool* pool = nullptr);

// ---------------------------------------------------------------------------
// The composed storage.
// ---------------------------------------------------------------------------

/// Two-level storage: `Primary` holds d'-dimensional projections and
/// serves traversal distances; `Secondary` holds the full d dimensions
/// and serves the Reranker seam's FullDistance. dim() is the full d —
/// callers hand in original-space queries and get original-space decodes;
/// the projection is internal.
template <typename Primary, typename Secondary>
class LeanVecStorageT {
 public:
  struct Query {
    typename Primary::Query primary;
    typename Secondary::Query secondary;
    std::vector<float> projected;  ///< d' scratch for the projection
  };

  LeanVecStorageT() = default;
  /// Adopts trained + encoded parts (the Build and Open paths both end
  /// here).
  LeanVecStorageT(LeanVecModel model, Primary primary, Secondary secondary)
      : model_(std::move(model)),
        primary_(std::move(primary)),
        secondary_(std::move(secondary)) {}

  size_t size() const { return primary_.size(); }
  size_t dim() const { return secondary_.dim(); }
  size_t primary_dim() const { return model_.reduced_dim(); }
  Metric metric() const { return secondary_.metric(); }

  size_t memory_bytes() const {
    return primary_.memory_bytes() + secondary_.memory_bytes() +
           model_.mean.size() * sizeof(float) +
           model_.proj.size() * sizeof(float);
  }
  const char* encoding_name() const {
    name_cache_ = std::string("LeanVec") + std::to_string(primary_dim()) +
                  "-" + primary_.encoding_name();
    return name_cache_.c_str();
  }

  const LeanVecModel& model() const { return model_; }
  const Primary& primary() const { return primary_; }
  const Secondary& secondary() const { return secondary_; }

  void PrepareQuery(const float* q, Query* out) const {
    out->projected.resize(primary_dim());
    LeanVecProjectQuery(model_, metric(), q, out->projected.data());
    primary_.PrepareQuery(out->projected.data(), &out->primary);
    secondary_.PrepareQuery(q, &out->secondary);
  }

  float Distance(const Query& q, size_t i) const {
    return primary_.Distance(q.primary, i);
  }

  /// Always two-level: searching a projection without full-dimension
  /// re-scoring would cap recall at the projection's accuracy.
  bool has_second_level() const { return true; }

  float FullDistance(const Query& q, size_t i, float* scratch) const {
    return secondary_.FullDistance(q.secondary, i, scratch);
  }

  void DecodeVector(size_t i, float* out) const {
    secondary_.DecodeVector(i, out);
  }

  void Prefetch(size_t i) const { primary_.Prefetch(i); }
  void PrefetchSecondLevel(size_t i) const { secondary_.Prefetch(i); }

 private:
  LeanVecModel model_;
  Primary primary_;
  Secondary secondary_;
  mutable std::string name_cache_;
};

/// static-leanvec: float32 projections, float32 full-dimension re-rank
/// (exact secondary distances).
using LeanVecStorage = LeanVecStorageT<FloatStorage, FloatStorage>;

/// static-leanvec-lvq: LVQ-8 projections, one-level LVQ-8 full-dimension
/// re-rank (compressed at both levels; ~9 bits/dim total at d' = d/4).
using LeanVecLvqStorage = LeanVecStorageT<LvqStorage, LvqStorage>;

/// Trains the model over `data` and encodes both levels. reduced_dim == 0
/// selects DefaultLeanVecDim(d).
Result<LeanVecStorage> BuildLeanVecStorage(MatrixViewF data, Metric metric,
                                           size_t reduced_dim,
                                           ThreadPool* pool = nullptr);
Result<LeanVecLvqStorage> BuildLeanVecLvqStorage(MatrixViewF data,
                                                 Metric metric,
                                                 size_t reduced_dim,
                                                 ThreadPool* pool = nullptr);

}  // namespace blink
