// Locally-adaptive Vector Quantization (LVQ) — the paper's primary
// contribution (Sec. 3).
//
// LVQ-B (Definition 1): vectors are mean-centered, then each vector is
// scalar-quantized with *its own* bounds
//     u = max_j (x_j - mu_j),   l = min_j (x_j - mu_j),
// so every vector uses the full 2^B code range (paper Fig. 2). The two
// constants are stored inline with the codes in float16 (B_const = 16).
//
// LVQ-B1xB2 (Definition 2): the level-1 quantization residual
// r = x - mu - Q(x), which is uniform in [-Delta/2, Delta/2), is quantized
// with B2 bits and no additional constants (Eq. 6). The second level is
// fetched only for the final re-ranking step (Sec. 3.2).
//
// Memory layout per vector (one cache-line-friendly contiguous blob,
// padded to `padding` bytes, Eq. 4):
//     [ l : float16 ][ u : float16 ][ codes : ceil(d*B/8) bytes ][ pad ]
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "quant/packing.h"
#include "quant/scalar.h"
#include "util/float16.h"
#include "util/matrix.h"
#include "util/memory.h"
#include "util/thread_pool.h"

namespace blink {

/// Per-vector decoding constants: reconstruction is delta * code + lower
/// (in centered space).
struct LvqConstants {
  float delta;
  float lower;
};

/// Bytes per vector blob after padding to a multiple of `padding` (Eq. 4;
/// 0 disables padding). Shared by the static and dynamic encoders and the
/// serializers so the stride can never diverge between them.
constexpr size_t LvqPaddedStride(size_t raw_bytes, size_t padding) {
  if (padding == 0) return raw_bytes;
  return (raw_bytes + padding - 1) / padding * padding;
}

/// Reference asymmetric L2 over packed B-bit LVQ codes — the arbitrary-B
/// fallback for widths without a fused SIMD kernel (the Figs. 5/6/11 bit
/// sweeps). `q` must already be centered.
inline float LvqGenericL2(const float* q, const uint8_t* codes,
                          const LvqConstants& c, int bits, size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) {
    const float v =
        c.delta * static_cast<float>(UnpackCode(codes, j, bits)) + c.lower;
    const float diff = q[j] - v;
    acc += diff * diff;
  }
  return acc;
}

/// Reference asymmetric negated inner product over packed B-bit LVQ codes
/// (`q` raw; the caller adds the -<q, mu> bias).
inline float LvqGenericIp(const float* q, const uint8_t* codes,
                          const LvqConstants& c, int bits, size_t d) {
  float acc = 0.0f;
  for (size_t j = 0; j < d; ++j) {
    const float v =
        c.delta * static_cast<float>(UnpackCode(codes, j, bits)) + c.lower;
    acc += q[j] * v;
  }
  return -acc;
}

/// One-level LVQ-B compressed dataset.
class LvqDataset {
 public:
  struct Options {
    int bits = 8;        ///< B, the per-component code width (1..16).
    size_t padding = 32; ///< Pad each vector blob to a multiple of this many
                         ///< bytes (32 = half cache line, as in the paper);
                         ///< 0 disables padding.
    bool use_huge_pages = true;
  };

  LvqDataset() = default;

  /// Compresses `data`, computing the dataset mean internally.
  static LvqDataset Encode(MatrixViewF data, const Options& opts,
                           ThreadPool* pool = nullptr);

  /// Compresses `data` against a caller-provided mean. Used when re-encoding
  /// after a data-distribution shift (Sec. 3.2) and for encoding query-side
  /// structures consistently with an existing index.
  static LvqDataset EncodeWithMean(MatrixViewF data,
                                   const std::vector<float>& mean,
                                   const Options& opts,
                                   ThreadPool* pool = nullptr);

  /// Reassembles a dataset from serialized parts (graph/serialize.h).
  /// `blob_bytes` must equal n * stride for the given (d, bits, padding).
  static LvqDataset FromRaw(size_t n, size_t d, int bits, size_t padding,
                            std::vector<float> mean, const uint8_t* blob,
                            size_t blob_bytes, bool use_huge_pages = true);

  /// Like FromRaw but without copying: the dataset reads blobs directly
  /// from `blob` (n * stride bytes, e.g. a section of a mapped v3
  /// artifact), which the caller keeps alive. The small mean vector is
  /// still owned. Only the d-sized mean is touched at construction — the
  /// blob pages fault in lazily as searches visit them.
  static LvqDataset FromExternal(size_t n, size_t d, int bits, size_t padding,
                                 std::vector<float> mean,
                                 const uint8_t* blob);

  /// Base of the contiguous per-vector blob region (n * stride bytes).
  const uint8_t* raw_blob() const { return data_ptr(); }

  size_t size() const { return n_; }
  size_t dim() const { return d_; }
  int bits() const { return bits_; }
  size_t padding() const { return padding_; }
  const std::vector<float>& mean() const { return mean_; }

  /// Bytes occupied by one compressed vector, including inline constants
  /// and padding (Eq. 4).
  size_t vector_footprint() const { return stride_; }

  /// Compression ratio vs float32 storage (Eq. 5).
  double compression_ratio() const {
    return static_cast<double>(d_) * 32.0 / (8.0 * static_cast<double>(stride_));
  }

  /// Total bytes of the compressed blob (excluding the d-float mean).
  size_t memory_bytes() const { return n_ * stride_; }

  /// Start of the i-th vector's blob (constants then codes).
  const uint8_t* blob(size_t i) const { return data_ptr() + i * stride_; }
  /// Start of the i-th vector's packed codes.
  const uint8_t* codes(size_t i) const { return blob(i) + kHeaderBytes; }

  /// Decoded per-vector constants.
  LvqConstants constants(size_t i) const {
    const uint8_t* b = blob(i);
    Float16 l16, u16;
    __builtin_memcpy(&l16, b, 2);
    __builtin_memcpy(&u16, b + 2, 2);
    const float l = l16, u = u16;
    const float range = u - l;
    const float delta =
        range > 0.0f ? range / static_cast<float>(MaxCode(bits_)) : 0.0f;
    return {delta, l};
  }

  /// Integer code of component j of vector i.
  uint32_t code(size_t i, size_t j) const { return UnpackCode(codes(i), j, bits_); }

  /// Reconstructs vector i in centered space: out_j = Delta*c_j + l.
  void DecodeCentered(size_t i, float* out) const;

  /// Reconstructs vector i in the original space (adds the mean back).
  void Decode(size_t i, float* out) const;

  /// Prefetches the i-th blob into cache (Sec. 5, "Advanced prefetching").
  void PrefetchVector(size_t i) const {
    const uint8_t* p = blob(i);
    for (size_t off = 0; off < stride_; off += 64) {
      __builtin_prefetch(p + off, 0, 3);
    }
  }

  static constexpr size_t kHeaderBytes = 4;  // l:f16 + u:f16

  /// True when the blob region is an external (e.g. mapped) view.
  bool mapped() const { return ext_blob_ != nullptr; }

 private:
  const uint8_t* data_ptr() const {
    return ext_blob_ != nullptr ? ext_blob_ : blob_.data();
  }

  size_t n_ = 0;
  size_t d_ = 0;
  int bits_ = 8;
  size_t padding_ = 32;
  size_t stride_ = 0;
  std::vector<float> mean_;
  Arena blob_;
  const uint8_t* ext_blob_ = nullptr;
};

/// Two-level LVQ-B1xB2 compressed dataset (Definition 2). The first level
/// is an LvqDataset; the second level stores only packed residual codes
/// (the residual quantizer's bounds are deduced from the level-1 constants,
/// Eq. 6, so no extra constants are stored).
class LvqDataset2 {
 public:
  struct Options {
    int bits1 = 4;
    int bits2 = 8;
    size_t padding = 32;  ///< Padding of the level-1 blobs.
    bool use_huge_pages = true;
  };

  LvqDataset2() = default;

  static LvqDataset2 Encode(MatrixViewF data, const Options& opts,
                            ThreadPool* pool = nullptr);

  /// Reassembles from serialized parts (graph/serialize.h).
  static LvqDataset2 FromRaw(LvqDataset level1, int bits2,
                             const uint8_t* residuals, size_t residual_bytes,
                             bool use_huge_pages = true);

  /// Non-copying variant of FromRaw over an external residual region
  /// (n * residual_stride bytes) the caller keeps alive — the map-mode
  /// counterpart of LvqDataset::FromExternal.
  static LvqDataset2 FromExternal(LvqDataset level1, int bits2,
                                  const uint8_t* residuals);

  /// Base of the contiguous residual-code region (n * residual_stride).
  const uint8_t* raw_residuals() const { return residual_ptr(); }
  size_t residual_stride() const { return residual_stride_; }

  const LvqDataset& level1() const { return level1_; }
  size_t size() const { return level1_.size(); }
  size_t dim() const { return level1_.dim(); }
  int bits1() const { return level1_.bits(); }
  int bits2() const { return bits2_; }

  const uint8_t* residual_codes(size_t i) const {
    return residual_ptr() + i * residual_stride_;
  }
  uint32_t residual_code(size_t i, size_t j) const {
    return UnpackCode(residual_codes(i), j, bits2_);
  }

  /// Per-vector footprint across both levels (Eq. 7).
  size_t vector_footprint() const {
    return level1_.vector_footprint() + residual_stride_;
  }
  double compression_ratio() const {
    return static_cast<double>(dim()) * 32.0 /
           (8.0 * static_cast<double>(vector_footprint()));
  }
  size_t memory_bytes() const {
    return level1_.memory_bytes() + size() * residual_stride_;
  }

  /// Full two-level reconstruction in centered space:
  /// out_j = Delta*c_j + l + (Delta2*c2_j - Delta/2).
  void DecodeCentered(size_t i, float* out) const;

  /// Full two-level reconstruction in the original space.
  void Decode(size_t i, float* out) const;

  void PrefetchResidual(size_t i) const {
    const uint8_t* p = residual_codes(i);
    for (size_t off = 0; off < residual_stride_; off += 64) {
      __builtin_prefetch(p + off, 0, 2);
    }
  }

 private:
  const uint8_t* residual_ptr() const {
    return ext_residuals_ != nullptr ? ext_residuals_ : residuals_.data();
  }

  LvqDataset level1_;
  int bits2_ = 8;
  size_t residual_stride_ = 0;
  Arena residuals_;
  const uint8_t* ext_residuals_ = nullptr;
};

}  // namespace blink
