// Growable LVQ dataset for the dynamic (streaming) index.
//
// The static LvqDataset encodes a whole dataset at once against its
// empirical mean. A mutable index cannot do that: vectors arrive one at a
// time, slots are recycled after tombstone purges, and the arena must grow
// in place under the index's stop-the-world lock. This dataset keeps the
// paper's per-vector layout (Sec. 3, Eq. 4) —
//
//     [ l : float16 ][ u : float16 ][ codes : ceil(d*B1/8) bytes ][ pad ]
//
// optionally followed by a parallel arena of packed B2-bit residual codes
// (LVQ-B1xB2, Definition 2) — but encodes each vector *at insert time*
// against a mean that is fixed up front from a sample of the expected
// distribution (Options::mean; zeros when no sample is available).
//
// Mean drift (DESIGN.md D9): LVQ's per-vector bounds absorb a stale mean —
// each vector still uses its full code range, only centered suboptimally —
// so recall degrades gracefully as the stream drifts away from the sample.
// The linear-time remedy the paper describes (recompute mean, re-encode)
// maps to rebuilding the dynamic index from decoded vectors.
//
// Concurrency contract (enforced by the owning index, graph/dynamic.h):
// EncodeInto() is writer-only and runs before the slot's id is published
// through the graph's release protocol, so readers that can name a slot
// always see its fully written blob; Grow() swaps the arenas and must run
// under the index's exclusive lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "quant/lvq.h"
#include "quant/packing.h"
#include "util/matrix.h"
#include "util/memory.h"

namespace blink {

/// Growable, insert-time-encoded LVQ-B / LVQ-B1xB2 code arena.
class DynamicLvqDataset {
 public:
  struct Options {
    int bits1 = 8;        ///< level-1 code width (1..16)
    int bits2 = 0;        ///< residual code width; 0 = one-level LVQ-B
    size_t padding = 32;  ///< level-1 blob padding (Eq. 4); 0 disables
    /// Fixed centering mean, captured from a sample of the expected data
    /// distribution (e.g. the first batch; see SampleMean). Empty = zero
    /// mean; per-vector bounds keep encoding correct either way.
    std::vector<float> mean;
    /// Growable arenas are reallocated on growth; huge pages make those
    /// copies stop-the-world-expensive, so default off (unlike the static
    /// datasets, which allocate once).
    bool use_huge_pages = false;
  };

  DynamicLvqDataset() = default;
  DynamicLvqDataset(size_t dim, Options opts);

  size_t dim() const { return d_; }
  size_t capacity() const { return capacity_; }
  int bits1() const { return opts_.bits1; }
  int bits2() const { return opts_.bits2; }
  size_t padding() const { return opts_.padding; }
  const std::vector<float>& mean() const { return opts_.mean; }
  bool has_second_level() const { return opts_.bits2 > 0; }

  /// Bytes of one slot across both levels (Eq. 7).
  size_t vector_footprint() const { return stride_ + residual_stride_; }
  /// Resident bytes of the arenas (capacity slots, live or not).
  size_t memory_bytes() const { return capacity_ * vector_footprint(); }

  size_t stride() const { return stride_; }
  size_t residual_stride() const { return residual_stride_; }

  /// Grows the arenas to hold `new_capacity` slots (copying existing
  /// blobs). Writer-only, under the owning index's exclusive lock: the old
  /// arenas are freed on return.
  void Grow(size_t new_capacity);

  /// Encodes `vec` (original space, dim floats) into `slot`: per-vector
  /// bounds + level-1 codes, and the residual codes when two-level.
  /// Writer-only; the slot must be unpublished — fresh, or recycled after
  /// the owning index's quiesce grace period.
  void EncodeInto(uint32_t slot, const float* vec);

  /// Start of slot i's level-1 blob (constants then codes).
  const uint8_t* blob(size_t i) const { return blob_.data() + i * stride_; }
  /// Start of slot i's packed level-1 codes.
  const uint8_t* codes(size_t i) const {
    return blob(i) + LvqDataset::kHeaderBytes;
  }
  const uint8_t* residual_codes(size_t i) const {
    return residuals_.data() + i * residual_stride_;
  }

  /// Decoded per-vector constants (delta, lower), as LvqDataset::constants.
  LvqConstants constants(size_t i) const;

  /// Reconstructs slot i in centered space (level 1 + residual when
  /// two-level).
  void DecodeCentered(size_t i, float* out) const;
  /// Reconstructs slot i in the original space (adds the mean back).
  void Decode(size_t i, float* out) const;

  // --- persistence access (graph/serialize.cc) -----------------------------

  const uint8_t* raw_blob() const { return blob_.data(); }
  const uint8_t* raw_residuals() const { return residuals_.data(); }

  /// Copies `n` serialized slots (level-1 blobs and, when two-level,
  /// residual codes) into the arenas. Requires capacity() >= n.
  void RestoreRows(const uint8_t* blob, const uint8_t* residuals, size_t n);

  /// Mean of (up to) the first `max_rows` rows of `sample` — the fixed
  /// centering mean for a stream expected to look like `sample`.
  static std::vector<float> SampleMean(MatrixViewF sample,
                                       size_t max_rows = 16384);

 private:
  size_t d_ = 0;
  Options opts_;
  size_t capacity_ = 0;
  size_t stride_ = 0;           ///< level-1 bytes per slot (padded)
  size_t residual_stride_ = 0;  ///< level-2 bytes per slot (0 = one-level)
  Arena blob_;                  ///< capacity * stride
  Arena residuals_;             ///< capacity * residual_stride
};

}  // namespace blink
