#include "quant/global.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace blink {

namespace {
size_t PaddedStride(size_t raw_bytes, size_t padding) {
  if (padding == 0) return raw_bytes;
  return (raw_bytes + padding - 1) / padding * padding;
}
}  // namespace

GlobalDataset GlobalDataset::Encode(MatrixViewF data, const Options& opts,
                                    ThreadPool* pool) {
  assert(opts.bits >= 1 && opts.bits <= 16);
  GlobalDataset ds;
  ds.n_ = data.rows;
  ds.d_ = data.cols;
  ds.bits_ = opts.bits;
  ds.bits2_ = opts.bits2;
  ds.mode_ = opts.mode;
  ds.stride_ = PaddedStride(PackedBytes(ds.d_, ds.bits_), opts.padding);
  ds.residual_stride_ =
      opts.bits2 > 0 ? PackedBytes(ds.d_, opts.bits2) : 0;

  // Dataset mean (centering, shared with LVQ for a like-for-like ablation).
  ds.mean_.assign(ds.d_, 0.0f);
  if (ds.n_ > 0) {
    std::vector<double> acc(ds.d_, 0.0);
    for (size_t i = 0; i < ds.n_; ++i) {
      const float* row = data.row(i);
      for (size_t j = 0; j < ds.d_; ++j) acc[j] += row[j];
    }
    for (size_t j = 0; j < ds.d_; ++j) {
      ds.mean_[j] = static_cast<float>(acc[j] / static_cast<double>(ds.n_));
    }
  }

  // Bounds over centered values: one pair (kGlobal) or d pairs (kPerDimension).
  const size_t nq = ds.mode_ == GlobalMode::kGlobal ? 1 : ds.d_;
  std::vector<float> lo(nq, std::numeric_limits<float>::infinity());
  std::vector<float> hi(nq, -std::numeric_limits<float>::infinity());
  for (size_t i = 0; i < ds.n_; ++i) {
    const float* row = data.row(i);
    for (size_t j = 0; j < ds.d_; ++j) {
      const float v = row[j] - ds.mean_[j];
      const size_t q = ds.mode_ == GlobalMode::kGlobal ? 0 : j;
      lo[q] = std::min(lo[q], v);
      hi[q] = std::max(hi[q], v);
    }
  }
  ds.quants_.reserve(nq);
  ds.res_quants_.reserve(nq);
  for (size_t q = 0; q < nq; ++q) {
    if (!(hi[q] > lo[q])) {  // degenerate or empty dataset
      lo[q] = 0.0f;
      hi[q] = 0.0f;
    }
    ds.quants_.emplace_back(ds.bits_, lo[q], hi[q]);
    if (opts.bits2 > 0) {
      ds.res_quants_.push_back(
          ResidualQuantizer(ds.quants_.back().delta(), opts.bits2));
    }
  }

  ds.blob_ = Arena(ds.n_ * ds.stride_, opts.use_huge_pages);
  if (opts.bits2 > 0) {
    ds.residuals_ = Arena(ds.n_ * ds.residual_stride_, opts.use_huge_pages);
  }

  auto encode_row = [&](size_t i) {
    const float* row = data.row(i);
    uint8_t* out = ds.blob_.data() + i * ds.stride_;
    uint8_t* rout =
        opts.bits2 > 0 ? ds.residuals_.data() + i * ds.residual_stride_ : nullptr;
    for (size_t j = 0; j < ds.d_; ++j) {
      const ScalarQuantizer& q = ds.quantizer(j);
      const float v = row[j] - ds.mean_[j];
      const uint32_t c = q.Encode(v);
      PackCode(out, j, ds.bits_, c);
      if (rout != nullptr) {
        const ScalarQuantizer& rq =
            ds.mode_ == GlobalMode::kGlobal ? ds.res_quants_[0] : ds.res_quants_[j];
        PackCode(rout, j, ds.bits2_, rq.Encode(v - q.Decode(c)));
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(ds.n_, encode_row);
  } else {
    for (size_t i = 0; i < ds.n_; ++i) encode_row(i);
  }
  return ds;
}

void GlobalDataset::DecodeCentered(size_t i, float* out) const {
  const uint8_t* cs = codes(i);
  for (size_t j = 0; j < d_; ++j) {
    out[j] = quantizer(j).Decode(UnpackCode(cs, j, bits_));
  }
}

void GlobalDataset::DecodeCenteredFull(size_t i, float* out) const {
  DecodeCentered(i, out);
  if (bits2_ > 0) {
    const uint8_t* rc = residual_codes(i);
    for (size_t j = 0; j < d_; ++j) {
      const ScalarQuantizer& rq =
          mode_ == GlobalMode::kGlobal ? res_quants_[0] : res_quants_[j];
      out[j] += rq.Decode(UnpackCode(rc, j, bits2_));
    }
  }
}

void GlobalDataset::Decode(size_t i, float* out) const {
  DecodeCenteredFull(i, out);
  for (size_t j = 0; j < d_; ++j) out[j] += mean_[j];
}

}  // namespace blink
