#include "net/client.h"

namespace blink {
namespace net {

Result<BlinkClient> BlinkClient::Connect(const std::string& host,
                                         uint16_t port) {
  Result<TcpConn> conn = TcpConnect(host, port);
  BLINK_RETURN_NOT_OK(conn.status());
  return BlinkClient(std::move(conn).value());
}

Status BlinkClient::RoundTrip(FrameType request,
                              const std::vector<uint8_t>& payload,
                              FrameType expected,
                              std::vector<uint8_t>* response) {
  BLINK_RETURN_NOT_OK(WriteFrame(conn_, request, payload));
  FrameType got;
  Result<bool> read = ReadFrame(conn_, max_frame_bytes_, &got, response);
  BLINK_RETURN_NOT_OK(read.status());
  if (!read.value()) {
    return Status::IOError("server closed the connection before responding");
  }
  if (got != expected) {
    return Status::IOError(
        "unexpected response frame type " +
        std::to_string(static_cast<unsigned>(got)) + " (wanted " +
        std::to_string(static_cast<unsigned>(expected)) + ")");
  }
  return Status::OK();
}

Status BlinkClient::Search(MatrixViewF queries, uint32_t k,
                           const SearchOptions& options,
                           SearchResponse* response) {
  std::vector<uint8_t> body;
  BLINK_RETURN_NOT_OK(RoundTrip(FrameType::kSearchRequest,
                                EncodeSearchRequest(queries, k, options),
                                FrameType::kSearchResponse, &body));
  return DecodeSearchResponse(body, response);
}

Status BlinkClient::Stats(StatusTextResponse* response) {
  std::vector<uint8_t> body;
  BLINK_RETURN_NOT_OK(RoundTrip(FrameType::kStatsRequest, {},
                                FrameType::kStatsResponse, &body));
  return DecodeStatusText(body, response);
}

Status BlinkClient::Swap(const std::string& artifact_path,
                         StatusTextResponse* response) {
  std::vector<uint8_t> body;
  BLINK_RETURN_NOT_OK(RoundTrip(FrameType::kSwapRequest,
                                EncodeSwapRequest(artifact_path),
                                FrameType::kSwapResponse, &body));
  return DecodeStatusText(body, response);
}

Status BlinkClient::Ping(WireStatus* status) {
  std::vector<uint8_t> body;
  BLINK_RETURN_NOT_OK(
      RoundTrip(FrameType::kPingRequest, {}, FrameType::kPingResponse, &body));
  if (body.size() != 1) return Status::IOError("malformed ping response");
  *status = static_cast<WireStatus>(body[0]);
  return Status::OK();
}

}  // namespace net
}  // namespace blink
