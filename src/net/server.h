// The network serving front end (DESIGN.md D13): a TCP server that speaks
// the net/protocol.h frame protocol over the async ServingEngine path,
// with in-band admission control and zero-downtime index hot-swap.
//
// Thread structure: one accept thread plus one blocking handler thread per
// connection (bounded by ServerOptions::max_connections). Handler threads
// never execute searches — they decode frames, TrySubmit() into the current
// generation's engine, await the futures, and write the response. Overload
// is answered immediately with a kOverloaded status frame instead of
// blocking the socket thread: the engine's admission control (bounded on
// in-flight queries, queued + executing) is surfaced to the wire.
//
// Hot-swap: a kSwapRequest (or a local Swap() call) Open()s the
// replacement artifact on the requesting handler thread — never a search
// thread — and GenerationHolder cuts over with a pointer swap. Requests
// hold a shared_ptr to the generation they started on, so in-flight
// queries finish against the old index while new requests see the new one;
// every search response carries the generation number it was served from,
// which is how the tests prove no response straddles a freed index.
//
// A connection whose first bytes are "GET " is served as one-shot HTTP:
// `GET /stats` returns the same JSON telemetry as a kStatsRequest frame,
// so `curl http://host:port/stats` works against a live server.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/index.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "serve/generation.h"
#include "util/status.h"
#include "util/timer.h"

namespace blink {
namespace net {

struct ServerOptions {
  std::string host = "127.0.0.1";  ///< numeric IPv4 bind address
  uint16_t port = 0;               ///< 0 = ephemeral; BlinkServer::port()
  int backlog = 128;
  size_t max_connections = 256;  ///< beyond this, new connections are closed
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  uint32_t max_queries_per_request = 4096;
  ServingOptions serving;  ///< per-generation engine configuration
  /// How kSwapRequest opens replacement artifacts. Map mode by default:
  /// the cheap background-load path (D12).
  OpenOptions swap_open;

  ServerOptions() { swap_open.load_mode = LoadMode::kMap; }
};

class BlinkServer {
 public:
  /// Binds, installs `index` as generation 1, and starts the accept
  /// thread. Serving begins before this returns.
  static Result<std::unique_ptr<BlinkServer>> Start(Index index,
                                                    const ServerOptions& opts);

  ~BlinkServer();  ///< calls Stop()

  BlinkServer(const BlinkServer&) = delete;
  BlinkServer& operator=(const BlinkServer&) = delete;

  /// The bound port (the ephemeral one when opts.port was 0).
  uint16_t port() const { return listener_.port(); }

  /// Graceful stop: unblocks the accept loop and every connection handler,
  /// joins them, and drains the current generation's engine so every
  /// admitted query resolves. Idempotent; also run by the destructor.
  void Stop();

  /// Hot-swaps to an artifact, same as a kSwapRequest frame would (the
  /// Open runs on the calling thread). Returns the new generation number.
  Result<uint64_t> Swap(const std::string& path);

  /// The generation machinery, for in-process swaps in tests/benches.
  GenerationHolder& generations() { return *holder_; }

  /// The /stats JSON document (also what the HTTP endpoint serves).
  std::string StatsJson() const;

  /// Open connections right now.
  size_t connection_count() const;

 private:
  struct Conn;

  BlinkServer(std::unique_ptr<GenerationHolder> holder, TcpListener listener,
              const ServerOptions& opts);

  void AcceptLoop();
  void HandleConnection(Conn* conn);
  /// One binary frame; false = close the connection.
  bool HandleFrame(TcpConn& conn, FrameType type,
                   const std::vector<uint8_t>& payload);
  bool HandleSearch(TcpConn& conn, const std::vector<uint8_t>& payload);
  /// One-shot HTTP exchange ("GET " already consumed).
  void HandleHttp(TcpConn& conn);
  void RecordLatencyUs(double us);
  void ReapFinished();

  ServerOptions opts_;
  std::unique_ptr<GenerationHolder> holder_;
  TcpListener listener_;
  std::mutex stop_mu_;  ///< serializes Stop(); held across the teardown
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;

  // Telemetry. Server-owned (not the engine's counters) so it survives
  // generation swaps, which stand up a fresh engine each time.
  Timer uptime_;
  std::atomic<uint64_t> completed_queries_{0};
  std::atomic<uint64_t> rejected_queries_{0};
  std::atomic<uint64_t> bad_requests_{0};
  std::atomic<uint64_t> http_requests_{0};
  mutable std::mutex lat_mu_;
  std::vector<double> latencies_us_;  ///< ring buffer of request latencies
  size_t lat_next_ = 0;
  bool lat_full_ = false;
};

}  // namespace net
}  // namespace blink
