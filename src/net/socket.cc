#include "net/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace blink {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  int one = 1;
  // Latency over throughput for small frames; failure is harmless.
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpConn.
// ---------------------------------------------------------------------------

Status TcpConn::WriteFull(const void* buf, size_t n) {
  if (fd_ < 0) return Status::IOError("write on closed connection");
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not kill
    // the process with SIGPIPE.
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status TcpConn::ReadFull(void* buf, size_t n) {
  Result<bool> got = ReadFullOrEof(buf, n);
  if (!got.ok()) return got.status();
  if (!got.value()) return Status::IOError("connection closed by peer");
  return Status::OK();
}

Result<bool> TcpConn::ReadFullOrEof(void* buf, size_t n) {
  if (fd_ < 0) return Status::IOError("read on closed connection");
  char* p = static_cast<char*>(buf);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::recv(fd_, p + done, n - done, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (r == 0) {
      if (done == 0) return false;  // clean EOF between messages
      return Status::IOError("connection closed mid-message (got " +
                             std::to_string(done) + " of " +
                             std::to_string(n) + " bytes)");
    }
    done += static_cast<size_t>(r);
  }
  return true;
}

void TcpConn::Shutdown() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void TcpConn::Close() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// TcpListener.
// ---------------------------------------------------------------------------

Result<TcpListener> TcpListener::Bind(const std::string& host, uint16_t port,
                                      int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  TcpListener l;
  l.fd_ = fd;  // RAII from here on

  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) return Errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Errno("getsockname");
  }
  l.port_ = ntohs(bound.sin_port);
  return l;
}

Result<TcpConn> TcpListener::Accept() {
  if (fd_ < 0) return Status::IOError("accept on closed listener");
  for (;;) {
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return Errno("accept");
    }
    SetNoDelay(cfd);
    return TcpConn(cfd);
  }
}

void TcpListener::Shutdown() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
    port_ = 0;
  }
}

// ---------------------------------------------------------------------------
// Connect + address parsing.
// ---------------------------------------------------------------------------

Result<TcpConn> TcpConnect(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IOError("getaddrinfo " + host + ": " + gai_strerror(rc));
  }
  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      SetNoDelay(fd);
      ::freeaddrinfo(res);
      return TcpConn(fd);
    }
    last = Errno("connect " + host + ":" + std::to_string(port));
    (void)::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

Result<std::pair<std::string, uint16_t>> ParseHostPort(const std::string& s) {
  const size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
    return Status::InvalidArgument("expected host:port, got '" + s + "'");
  }
  const std::string host = s.substr(0, colon);
  const std::string port_str = s.substr(colon + 1);
  unsigned long port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad port in '" + s + "'");
    }
    port = port * 10 + static_cast<unsigned long>(c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range in '" + s + "'");
    }
  }
  if (port == 0) {
    return Status::InvalidArgument("port 0 is not connectable: '" + s + "'");
  }
  return std::make_pair(host, static_cast<uint16_t>(port));
}

}  // namespace net
}  // namespace blink
