// blink wire protocol (DESIGN.md D13): length-prefixed binary frames over
// a TCP stream, little-endian scalars (x86-native; documented, not
// negotiated).
//
//   frame   := u32 body_len | body            body_len = len(body) >= 1
//   body    := u8 type | payload
//
// Request payloads
//   kSearchRequest:
//     u32 k | u32 window | u32 nprobe_shards | u32 rerank_window |
//     u8 rerank | u8 flags | u8 reserved[2] | u32 num_queries | u32 dim |
//     f32 data[num_queries * dim] | [filter]
//   flags bit 0 = a filter block follows the query floats (the byte was
//   reserved-zero before filters existed, so filterless clients of any
//   vintage decode unchanged); other bits must be zero.
//   filter  := u64 tag_any | u64 tag_all | u64 tag_none |
//              u8 strategy (0 auto, 1 post-filter, 2 in-search) |
//              u8 reserved[3] | u32 widen_cap | u32 num_ranges (<= 64) |
//              num_ranges * (u32 column | u8 lo_strict | u8 hi_strict |
//                            u8 reserved[2] | f64 lo | f64 hi)
//   kStatsRequest: (empty)                  -> JSON telemetry
//   kSwapRequest:  u32 path_len | path      -> hot-swap to that artifact
//   kPingRequest:  (empty)                  -> readiness probe
//
// Response payloads (type = request type | 0x80)
//   kSearchResponse:
//     u8 status | u8 reserved[3] | u64 generation |
//     u32 num_queries | u32 k | u32 ids[nq*k] | f32 dists[nq*k]
//     (num_queries = k = 0 and no arrays unless status == kOk; ids/dists
//      follow the eval/interface.h padding contract: kInvalidId / +inf)
//   kStatsResponse: u8 status | u8 reserved[3] | u32 json_len | json
//   kSwapResponse:  u8 status | u8 reserved[3] | u64 generation |
//                   u32 msg_len | msg       (msg = error text when !kOk)
//   kPingResponse:  u8 status
//
// Admission control is in-band: an overloaded server answers a search
// frame immediately with status kOverloaded instead of queueing —
// clients never stall behind a full queue, and the socket thread never
// blocks on backpressure.
//
// HTTP escape hatch: a connection whose first four bytes are "GET " is
// served as one-shot HTTP — `GET /stats` returns the same JSON as
// kStatsRequest (curl-able), anything else 404 — then closed. The sniff
// is unambiguous: "GET " as a little-endian u32 is 0x20544547 (~542 MB),
// far above any sane frame bound.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "eval/interface.h"
#include "net/socket.h"
#include "util/matrix.h"
#include "util/status.h"

namespace blink {
namespace net {

/// Default per-frame bound: big enough for a 4096-query batch of d=1536
/// float32 vectors, small enough to reject garbage length prefixes before
/// allocating.
inline constexpr uint32_t kDefaultMaxFrameBytes = 64u << 20;

enum class FrameType : uint8_t {
  kSearchRequest = 1,
  kStatsRequest = 2,
  kSwapRequest = 3,
  kPingRequest = 4,
  kSearchResponse = 0x81,
  kStatsResponse = 0x82,
  kSwapResponse = 0x83,
  kPingResponse = 0x84,
};

/// Per-response disposition, the wire face of SearchOutcome.
enum class WireStatus : uint8_t {
  kOk = 0,
  kOverloaded = 1,    ///< admission control rejected the request
  kShuttingDown = 2,  ///< server is stopping; retry elsewhere
  kBadRequest = 3,    ///< malformed frame / invalid options / wrong dim
  kError = 4,         ///< server-side failure (e.g. swap Open error)
};

inline const char* WireStatusName(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kOverloaded: return "overloaded";
    case WireStatus::kShuttingDown: return "shutting-down";
    case WireStatus::kBadRequest: return "bad-request";
    case WireStatus::kError: return "error";
  }
  return "unknown";
}

// --- byte-buffer encode/decode ---------------------------------------------

/// Appends little-endian scalars to a byte vector. (x86-native byte order;
/// memcpy keeps it alignment-safe.)
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F32(float v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Bytes(const void* p, size_t n) { Raw(p, n); }
  void Pad(size_t n) { buf_.insert(buf_.end(), n, 0); }

  std::vector<uint8_t>& buf() { return buf_; }
  const std::vector<uint8_t>& buf() const { return buf_; }

 private:
  void Raw(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<uint8_t> buf_;
};

/// Bounds-checked reads over a received payload. Every getter returns
/// false once the payload is exhausted; check ok() (or the getter) before
/// trusting outputs.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : p_(data), n_(size) {}

  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool F32(float* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Bytes(void* out, size_t n) { return Raw(out, n); }
  bool Skip(size_t n) {
    if (n_ - off_ < n) return ok_ = false;
    off_ += n;
    return true;
  }
  /// Borrow `n` bytes in place (valid while the payload buffer lives).
  bool View(const uint8_t** out, size_t n) {
    if (n_ - off_ < n) return ok_ = false;
    *out = p_ + off_;
    off_ += n;
    return true;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && off_ == n_; }
  size_t remaining() const { return n_ - off_; }

 private:
  bool Raw(void* out, size_t n) {
    if (n_ - off_ < n) return ok_ = false;
    std::memcpy(out, p_ + off_, n);
    off_ += n;
    return true;
  }
  const uint8_t* p_;
  size_t n_;
  size_t off_ = 0;
  bool ok_ = true;
};

// --- framing over a TcpConn -------------------------------------------------

/// Writes one frame (length prefix + type + payload).
inline Status WriteFrame(TcpConn& conn, FrameType type,
                         const std::vector<uint8_t>& payload) {
  const uint64_t body = 1 + payload.size();
  if (body > UINT32_MAX) return Status::InvalidArgument("frame too large");
  WireWriter head;
  head.U32(static_cast<uint32_t>(body));
  head.U8(static_cast<uint8_t>(type));
  BLINK_RETURN_NOT_OK(conn.WriteFull(head.buf().data(), head.buf().size()));
  if (!payload.empty()) {
    BLINK_RETURN_NOT_OK(conn.WriteFull(payload.data(), payload.size()));
  }
  return Status::OK();
}

/// Reads the body of a frame whose u32 length prefix was already consumed
/// (the server reads the first 4 bytes itself to sniff HTTP).
inline Status ReadFrameBody(TcpConn& conn, uint32_t body_len,
                            uint32_t max_frame_bytes, FrameType* type,
                            std::vector<uint8_t>* payload) {
  if (body_len == 0) return Status::InvalidArgument("empty frame body");
  if (body_len > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame body of " + std::to_string(body_len) +
        " bytes exceeds the limit (" + std::to_string(max_frame_bytes) + ")");
  }
  uint8_t t = 0;
  BLINK_RETURN_NOT_OK(conn.ReadFull(&t, 1));
  *type = static_cast<FrameType>(t);
  payload->resize(body_len - 1);
  if (!payload->empty()) {
    BLINK_RETURN_NOT_OK(conn.ReadFull(payload->data(), payload->size()));
  }
  return Status::OK();
}

/// Reads one whole frame. Result(false) on clean EOF before a new frame
/// (the peer is done); errors elsewhere.
inline Result<bool> ReadFrame(TcpConn& conn, uint32_t max_frame_bytes,
                              FrameType* type, std::vector<uint8_t>* payload) {
  uint32_t body_len = 0;
  Result<bool> got = conn.ReadFullOrEof(&body_len, sizeof(body_len));
  if (!got.ok()) return got.status();
  if (!got.value()) return false;
  BLINK_RETURN_NOT_OK(
      ReadFrameBody(conn, body_len, max_frame_bytes, type, payload));
  return true;
}

// --- search request ---------------------------------------------------------

/// A parsed kSearchRequest. `queries` points into the payload buffer it
/// was decoded from (no copy); keep that buffer alive while using it.
struct SearchRequest {
  uint32_t k = 0;
  SearchOptions options;
  uint32_t num_queries = 0;
  uint32_t dim = 0;
  const float* queries = nullptr;

  MatrixViewF view() const { return MatrixViewF(queries, num_queries, dim); }
};

/// Wire flags (the byte after `rerank`; reserved-zero pre-filter).
inline constexpr uint8_t kSearchFlagHasFilter = 1u << 0;
/// Range-count bound for the filter block: far above any sane predicate,
/// small enough to reject garbage before allocating.
inline constexpr uint32_t kMaxWireFilterRanges = 64;

inline std::vector<uint8_t> EncodeSearchRequest(MatrixViewF queries,
                                                uint32_t k,
                                                const SearchOptions& options) {
  WireWriter w;
  w.U32(k);
  w.U32(options.window);
  w.U32(options.nprobe_shards);
  w.U32(options.rerank_window);
  w.U8(options.rerank ? 1 : 0);
  w.U8(options.filter != nullptr ? kSearchFlagHasFilter : 0);
  w.Pad(2);
  w.U32(static_cast<uint32_t>(queries.rows));
  w.U32(static_cast<uint32_t>(queries.cols));
  w.Bytes(queries.data, queries.rows * queries.cols * sizeof(float));
  if (options.filter != nullptr) {
    const Predicate& p = *options.filter;
    w.U64(p.tag_any);
    w.U64(p.tag_all);
    w.U64(p.tag_none);
    w.U8(static_cast<uint8_t>(options.filter_strategy));
    w.Pad(3);
    w.U32(options.filter_widen_cap);
    w.U32(static_cast<uint32_t>(p.ranges.size()));
    for (const Predicate::Range& rg : p.ranges) {
      w.U32(rg.column);
      w.U8(rg.lo_strict ? 1 : 0);
      w.U8(rg.hi_strict ? 1 : 0);
      w.Pad(2);
      w.F64(rg.lo);
      w.F64(rg.hi);
    }
  }
  return std::move(w.buf());
}

/// Structural decode only (shape + bounds); semantic validation (dim match,
/// SearchOptions::Validate, predicate-vs-schema) is the server's.
inline Status DecodeSearchRequest(const std::vector<uint8_t>& payload,
                                  SearchRequest* out) {
  WireReader r(payload.data(), payload.size());
  uint8_t rerank = 0;
  uint8_t flags = 0;
  if (!r.U32(&out->k) || !r.U32(&out->options.window) ||
      !r.U32(&out->options.nprobe_shards) ||
      !r.U32(&out->options.rerank_window) || !r.U8(&rerank) || !r.U8(&flags) ||
      !r.Skip(2) || !r.U32(&out->num_queries) || !r.U32(&out->dim)) {
    return Status::InvalidArgument("truncated search request header");
  }
  out->options.rerank = rerank != 0;
  if ((flags & ~kSearchFlagHasFilter) != 0) {
    return Status::InvalidArgument("search request has unknown flag bits set");
  }
  const bool has_filter = (flags & kSearchFlagHasFilter) != 0;
  const uint64_t floats =
      static_cast<uint64_t>(out->num_queries) * out->dim;
  // Filterless requests (any client vintage) must consume the payload
  // exactly; with a filter the block follows the floats and the decode
  // below re-checks exhaustion.
  if (!has_filter && floats * sizeof(float) != r.remaining()) {
    return Status::InvalidArgument(
        "search request payload size mismatch: header says " +
        std::to_string(floats) + " floats, body has " +
        std::to_string(r.remaining() / sizeof(float)));
  }
  const uint8_t* raw = nullptr;
  if (floats > 0 && !r.View(&raw, floats * sizeof(float))) {
    return Status::InvalidArgument("truncated search request body");
  }
  out->queries = reinterpret_cast<const float*>(raw);
  if (has_filter) {
    auto pred = std::make_shared<Predicate>();
    uint8_t strategy = 0;
    uint32_t num_ranges = 0;
    if (!r.U64(&pred->tag_any) || !r.U64(&pred->tag_all) ||
        !r.U64(&pred->tag_none) || !r.U8(&strategy) || !r.Skip(3) ||
        !r.U32(&out->options.filter_widen_cap) || !r.U32(&num_ranges)) {
      return Status::InvalidArgument("truncated search request filter block");
    }
    if (strategy > static_cast<uint8_t>(FilterStrategy::kInSearch)) {
      return Status::InvalidArgument("search request has an unknown filter "
                                     "strategy (" +
                                     std::to_string(strategy) + ")");
    }
    if (num_ranges > kMaxWireFilterRanges) {
      return Status::InvalidArgument(
          "search request filter has " + std::to_string(num_ranges) +
          " ranges (limit " + std::to_string(kMaxWireFilterRanges) + ")");
    }
    pred->ranges.resize(num_ranges);
    for (Predicate::Range& rg : pred->ranges) {
      uint8_t lo_strict = 0, hi_strict = 0;
      if (!r.U32(&rg.column) || !r.U8(&lo_strict) || !r.U8(&hi_strict) ||
          !r.Skip(2) || !r.F64(&rg.lo) || !r.F64(&rg.hi)) {
        return Status::InvalidArgument("truncated search request filter "
                                       "range");
      }
      rg.lo_strict = lo_strict != 0;
      rg.hi_strict = hi_strict != 0;
    }
    if (!r.AtEnd()) {
      return Status::InvalidArgument(
          "search request has trailing bytes after the filter block");
    }
    out->options.filter_strategy = static_cast<FilterStrategy>(strategy);
    out->options.filter = std::move(pred);
  }
  return Status::OK();
}

// --- search response --------------------------------------------------------

struct SearchResponse {
  WireStatus status = WireStatus::kOk;
  uint64_t generation = 0;
  uint32_t num_queries = 0;
  uint32_t k = 0;
  std::vector<uint32_t> ids;   ///< num_queries x k row-major, padded
  std::vector<float> dists;    ///< num_queries x k row-major, padded
};

inline std::vector<uint8_t> EncodeSearchResponse(const SearchResponse& res) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(res.status));
  w.Pad(3);
  w.U64(res.generation);
  if (res.status == WireStatus::kOk) {
    w.U32(res.num_queries);
    w.U32(res.k);
    w.Bytes(res.ids.data(), res.ids.size() * sizeof(uint32_t));
    w.Bytes(res.dists.data(), res.dists.size() * sizeof(float));
  } else {
    w.U32(0);
    w.U32(0);
  }
  return std::move(w.buf());
}

inline Status DecodeSearchResponse(const std::vector<uint8_t>& payload,
                                   SearchResponse* out) {
  WireReader r(payload.data(), payload.size());
  uint8_t status = 0;
  if (!r.U8(&status) || !r.Skip(3) || !r.U64(&out->generation) ||
      !r.U32(&out->num_queries) || !r.U32(&out->k)) {
    return Status::InvalidArgument("truncated search response header");
  }
  out->status = static_cast<WireStatus>(status);
  const uint64_t cells =
      static_cast<uint64_t>(out->num_queries) * out->k;
  if (cells * (sizeof(uint32_t) + sizeof(float)) != r.remaining()) {
    return Status::InvalidArgument("search response size mismatch");
  }
  out->ids.resize(cells);
  out->dists.resize(cells);
  if (cells > 0) {
    if (!r.Bytes(out->ids.data(), cells * sizeof(uint32_t)) ||
        !r.Bytes(out->dists.data(), cells * sizeof(float))) {
      return Status::InvalidArgument("truncated search response body");
    }
  }
  return Status::OK();
}

// --- stats / swap / ping ----------------------------------------------------

inline std::vector<uint8_t> EncodeSwapRequest(const std::string& path) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(path.size()));
  w.Bytes(path.data(), path.size());
  return std::move(w.buf());
}

inline Status DecodeSwapRequest(const std::vector<uint8_t>& payload,
                                std::string* path) {
  WireReader r(payload.data(), payload.size());
  uint32_t len = 0;
  if (!r.U32(&len) || len != r.remaining()) {
    return Status::InvalidArgument("malformed swap request");
  }
  path->resize(len);
  if (len > 0 && !r.Bytes(path->data(), len)) {
    return Status::InvalidArgument("truncated swap request");
  }
  return Status::OK();
}

/// Status + u64 (generation) + trailing text — the shape shared by the
/// swap response (text = error) and the stats response (text = JSON,
/// generation = 0).
struct StatusTextResponse {
  WireStatus status = WireStatus::kOk;
  uint64_t generation = 0;
  std::string text;
};

inline std::vector<uint8_t> EncodeStatusText(const StatusTextResponse& res) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(res.status));
  w.Pad(3);
  w.U64(res.generation);
  w.U32(static_cast<uint32_t>(res.text.size()));
  w.Bytes(res.text.data(), res.text.size());
  return std::move(w.buf());
}

inline Status DecodeStatusText(const std::vector<uint8_t>& payload,
                               StatusTextResponse* out) {
  WireReader r(payload.data(), payload.size());
  uint8_t status = 0;
  uint32_t len = 0;
  if (!r.U8(&status) || !r.Skip(3) || !r.U64(&out->generation) ||
      !r.U32(&len) || len != r.remaining()) {
    return Status::InvalidArgument("malformed status+text response");
  }
  out->status = static_cast<WireStatus>(status);
  out->text.resize(len);
  if (len > 0 && !r.Bytes(out->text.data(), len)) {
    return Status::InvalidArgument("truncated status+text response");
  }
  return Status::OK();
}

}  // namespace net
}  // namespace blink
