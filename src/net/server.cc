#include "net/server.h"

#include <cstring>
#include <future>
#include <utility>

#include "eval/report.h"
#include "shard/sharded_index.h"
#include "util/stats.h"

namespace blink {
namespace net {

namespace {

/// Ring-buffer capacity for request-latency samples: enough for stable
/// p99 estimates, small enough that the snapshot copy under the lock is
/// cheap.
constexpr size_t kLatencyRingCapacity = 8192;

/// "GET " as the little-endian u32 a binary client would have sent as a
/// frame length — the HTTP sniff (see protocol.h).
constexpr uint32_t kHttpGetPrefix = 0x20544547u;

WireStatus StatusFromOutcome(ServingEngine::SubmitOutcome o) {
  switch (o) {
    case ServingEngine::SubmitOutcome::kAccepted: return WireStatus::kOk;
    case ServingEngine::SubmitOutcome::kRejectedOverload:
      return WireStatus::kOverloaded;
    case ServingEngine::SubmitOutcome::kRejectedShutdown:
      return WireStatus::kShuttingDown;
  }
  return WireStatus::kError;
}

}  // namespace

/// One live connection: its socket (Shutdown()-able from Stop()) and the
/// handler thread serving it.
struct BlinkServer::Conn {
  TcpConn sock;
  std::thread thread;
  std::atomic<bool> done{false};
};

// ---------------------------------------------------------------------------
// Lifecycle.
// ---------------------------------------------------------------------------

Result<std::unique_ptr<BlinkServer>> BlinkServer::Start(
    Index index, const ServerOptions& opts) {
  auto holder = GenerationHolder::Create(std::move(index), opts.serving);
  BLINK_RETURN_NOT_OK(holder.status());
  auto listener = TcpListener::Bind(opts.host, opts.port, opts.backlog);
  BLINK_RETURN_NOT_OK(listener.status());
  std::unique_ptr<BlinkServer> server(new BlinkServer(
      std::move(holder).value(), std::move(listener).value(), opts));
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

BlinkServer::BlinkServer(std::unique_ptr<GenerationHolder> holder,
                         TcpListener listener, const ServerOptions& opts)
    : opts_(opts),
      holder_(std::move(holder)),
      listener_(std::move(listener)),
      latencies_us_(kLatencyRingCapacity, 0.0) {}

BlinkServer::~BlinkServer() { Stop(); }

void BlinkServer::Stop() {
  // stop_mu_ held for the whole teardown: a second caller blocks until the
  // first finishes, so "Stop returned" always means "handlers joined and
  // the engine drained".
  std::lock_guard<std::mutex> stop_lk(stop_mu_);
  if (stopping_.exchange(true)) return;
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) c->sock.Shutdown();  // unblock handlers in ReadFull
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
  }
  // Every admitted query resolves before Stop returns.
  holder_->Current()->engine->Drain();
}

// ---------------------------------------------------------------------------
// Accept + connection handling.
// ---------------------------------------------------------------------------

void BlinkServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<TcpConn> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      continue;  // transient (EMFILE, aborted handshake); keep serving
    }
    ReapFinished();
    std::lock_guard<std::mutex> lk(conns_mu_);
    if (stopping_.load(std::memory_order_relaxed)) break;
    if (conns_.size() >= opts_.max_connections) {
      continue;  // over the cap: `accepted` goes out of scope and closes
    }
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(accepted).value();
    Conn* raw = conn.get();
    conn->thread = std::thread([this, raw] {
      HandleConnection(raw);
      // Send the FIN eagerly: the Conn slot (and its fd) is only reclaimed
      // on the next accept (ReapFinished), and a client waiting for our
      // EOF must not wait that long. Shutdown, not Close — Stop() may
      // concurrently Shutdown() this socket, and that is documented safe,
      // while racing a Close could free and reuse the fd under it.
      raw->sock.Shutdown();
      raw->done.store(true, std::memory_order_release);
    });
    conns_.push_back(std::move(conn));
  }
}

void BlinkServer::ReapFinished() {
  std::lock_guard<std::mutex> lk(conns_mu_);
  for (size_t i = 0; i < conns_.size();) {
    if (conns_[i]->done.load(std::memory_order_acquire)) {
      if (conns_[i]->thread.joinable()) conns_[i]->thread.join();
      conns_[i] = std::move(conns_.back());
      conns_.pop_back();
    } else {
      ++i;
    }
  }
}

size_t BlinkServer::connection_count() const {
  std::lock_guard<std::mutex> lk(conns_mu_);
  return conns_.size();
}

void BlinkServer::HandleConnection(Conn* conn) {
  TcpConn& sock = conn->sock;
  for (;;) {
    uint32_t prefix = 0;
    Result<bool> got = sock.ReadFullOrEof(&prefix, sizeof(prefix));
    if (!got.ok() || !got.value()) return;  // error, shutdown, or clean EOF
    if (prefix == kHttpGetPrefix) {
      HandleHttp(sock);
      return;  // one-shot; connection closes
    }
    FrameType type;
    std::vector<uint8_t> payload;
    if (!ReadFrameBody(sock, prefix, opts_.max_frame_bytes, &type, &payload)
             .ok()) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      return;  // framing is unrecoverable; drop the connection
    }
    if (!HandleFrame(sock, type, payload)) return;
  }
}

bool BlinkServer::HandleFrame(TcpConn& conn, FrameType type,
                              const std::vector<uint8_t>& payload) {
  switch (type) {
    case FrameType::kSearchRequest:
      return HandleSearch(conn, payload);

    case FrameType::kStatsRequest: {
      StatusTextResponse res;
      res.status = WireStatus::kOk;
      res.generation = holder_->generation();
      res.text = StatsJson();
      return WriteFrame(conn, FrameType::kStatsResponse, EncodeStatusText(res))
          .ok();
    }

    case FrameType::kSwapRequest: {
      StatusTextResponse res;
      std::string path;
      Status decoded = DecodeSwapRequest(payload, &path);
      if (!decoded.ok()) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        res.status = WireStatus::kBadRequest;
        res.generation = holder_->generation();
        res.text = decoded.ToString();
      } else {
        // The Open + cutover run right here, on this handler thread —
        // never on a search thread. Other connections keep serving from
        // the current generation throughout.
        Result<uint64_t> swapped = holder_->SwapFromArtifact(
            path, opts_.swap_open);
        if (swapped.ok()) {
          res.status = WireStatus::kOk;
          res.generation = swapped.value();
        } else {
          res.status = WireStatus::kError;
          res.generation = holder_->generation();
          res.text = swapped.status().ToString();
        }
      }
      return WriteFrame(conn, FrameType::kSwapResponse, EncodeStatusText(res))
          .ok();
    }

    case FrameType::kPingRequest: {
      WireWriter w;
      w.U8(static_cast<uint8_t>(stopping_.load(std::memory_order_relaxed)
                                    ? WireStatus::kShuttingDown
                                    : WireStatus::kOk));
      return WriteFrame(conn, FrameType::kPingResponse, w.buf()).ok();
    }

    default:
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      return false;  // unknown type: the stream cannot be trusted
  }
}

bool BlinkServer::HandleSearch(TcpConn& conn,
                               const std::vector<uint8_t>& payload) {
  auto reply_status = [&](WireStatus status, uint64_t generation) {
    SearchResponse res;
    res.status = status;
    res.generation = generation;
    return WriteFrame(conn, FrameType::kSearchResponse,
                      EncodeSearchResponse(res))
        .ok();
  };

  SearchRequest req;
  Status decoded = DecodeSearchRequest(payload, &req);
  // One generation per request: grabbed once, held (shared_ptr) until the
  // response is written, so a concurrent swap cannot free it under us.
  std::shared_ptr<ServingGeneration> gen = holder_->Current();
  if (!decoded.ok() || req.k == 0 || req.num_queries == 0 ||
      req.num_queries > opts_.max_queries_per_request ||
      req.dim != gen->index.dim()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return reply_status(WireStatus::kBadRequest, gen->number);
  }
  SearchOptions options = req.options;
  if (options.window == 0) options.window = SearchOptions().window;
  // ValidateFor rejects a filter against an index with no metadata
  // attached (kCapFilter); the schema check below catches predicates
  // naming columns the attached store does not have. Both are client
  // errors, not fail-closed searches.
  if (!options.ValidateFor(gen->index.capabilities()).ok()) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    return reply_status(WireStatus::kBadRequest, gen->number);
  }
  if (options.filter != nullptr) {
    const MetadataStore* md = gen->index.metadata();
    if (md == nullptr ||
        !options.filter->ValidateFor(md->num_columns()).ok()) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      return reply_status(WireStatus::kBadRequest, gen->number);
    }
  }

  Timer request_timer;
  const size_t nq = req.num_queries;
  const size_t k = req.k;
  std::vector<std::future<SearchResult>> futures;
  futures.reserve(nq);
  WireStatus admit = WireStatus::kOk;
  for (size_t q = 0; q < nq; ++q) {
    std::future<SearchResult> fut;
    ServingEngine::SubmitOutcome outcome = gen->engine->TrySubmit(
        req.queries + q * req.dim, k, options, &fut);
    if (outcome != ServingEngine::SubmitOutcome::kAccepted) {
      admit = StatusFromOutcome(outcome);
      break;
    }
    futures.push_back(std::move(fut));
  }

  // Await whatever was admitted even when rejecting the request — the
  // engine's in-flight accounting must settle, and a rejection response
  // must not race queries still holding this generation's searchers.
  SearchResponse res;
  res.generation = gen->number;
  res.num_queries = static_cast<uint32_t>(futures.size());
  res.k = static_cast<uint32_t>(k);
  res.ids.resize(futures.size() * k, kInvalidId);
  res.dists.resize(futures.size() * k, kInvalidDist);
  for (size_t q = 0; q < futures.size(); ++q) {
    SearchResult r = futures[q].get();
    if (r.outcome != SearchOutcome::kOk && admit == WireStatus::kOk) {
      admit = r.outcome == SearchOutcome::kShutdown
                  ? WireStatus::kShuttingDown
                  : WireStatus::kOverloaded;
    }
    const size_t m = std::min(k, r.ids.size());
    std::memcpy(res.ids.data() + q * k, r.ids.data(), m * sizeof(uint32_t));
    std::memcpy(res.dists.data() + q * k, r.dists.data(), m * sizeof(float));
  }

  if (admit != WireStatus::kOk) {
    if (admit == WireStatus::kOverloaded) {
      rejected_queries_.fetch_add(1, std::memory_order_relaxed);
    }
    return reply_status(admit, gen->number);
  }
  res.status = WireStatus::kOk;
  completed_queries_.fetch_add(nq, std::memory_order_relaxed);
  RecordLatencyUs(request_timer.Micros());
  return WriteFrame(conn, FrameType::kSearchResponse,
                    EncodeSearchResponse(res))
      .ok();
}

// ---------------------------------------------------------------------------
// HTTP /stats.
// ---------------------------------------------------------------------------

void BlinkServer::HandleHttp(TcpConn& conn) {
  http_requests_.fetch_add(1, std::memory_order_relaxed);
  // "GET " is consumed; read the rest of the head (bounded) to find the
  // path. We answer one request and close — curl's default mode.
  std::string head;
  char c = 0;
  while (head.size() < 4096 &&
         head.find("\r\n\r\n") == std::string::npos) {
    Result<bool> got = conn.ReadFullOrEof(&c, 1);
    if (!got.ok() || !got.value()) break;
    head.push_back(c);
  }
  const size_t space = head.find(' ');
  const std::string path =
      space == std::string::npos ? head.substr(0, head.find('\r'))
                                 : head.substr(0, space);

  std::string body;
  std::string status_line;
  if (path == "/stats" || path == "/stats/") {
    status_line = "HTTP/1.0 200 OK";
    body = StatsJson();
    body.push_back('\n');
  } else {
    status_line = "HTTP/1.0 404 Not Found";
    body = "{\"error\": \"unknown path; try /stats\"}\n";
  }
  std::string resp = status_line +
                     "\r\nContent-Type: application/json\r\nContent-Length: " +
                     std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n" + body;
  (void)conn.WriteFull(resp.data(), resp.size());
}

// ---------------------------------------------------------------------------
// Telemetry.
// ---------------------------------------------------------------------------

void BlinkServer::RecordLatencyUs(double us) {
  std::lock_guard<std::mutex> lk(lat_mu_);
  latencies_us_[lat_next_] = us;
  lat_next_ = (lat_next_ + 1) % latencies_us_.size();
  if (lat_next_ == 0) lat_full_ = true;
}

std::string BlinkServer::StatsJson() const {
  std::shared_ptr<ServingGeneration> gen = holder_->Current();
  const double uptime = uptime_.Seconds();
  const uint64_t completed =
      completed_queries_.load(std::memory_order_relaxed);

  std::vector<double> lats;
  {
    std::lock_guard<std::mutex> lk(lat_mu_);
    const size_t n = lat_full_ ? latencies_us_.size() : lat_next_;
    lats.assign(latencies_us_.begin(), latencies_us_.begin() + n);
  }

  json::Object o;
  o["server"] = "blink_server";
  o["uptime_seconds"] = uptime;
  o["generation"] = static_cast<double>(gen->number);
  o["swaps"] = static_cast<double>(holder_->swap_count());
  o["source"] = gen->source;
  {
    json::Object idx;
    idx["name"] = gen->index.name();
    idx["size"] = static_cast<double>(gen->index.size());
    idx["dim"] = static_cast<double>(gen->index.dim());
    idx["memory_bytes"] = static_cast<double>(gen->index.memory_bytes());
    o["index"] = std::move(idx);
  }
  o["completed_queries"] = static_cast<double>(completed);
  o["rejected_queries"] =
      static_cast<double>(rejected_queries_.load(std::memory_order_relaxed));
  o["bad_requests"] =
      static_cast<double>(bad_requests_.load(std::memory_order_relaxed));
  o["http_requests"] =
      static_cast<double>(http_requests_.load(std::memory_order_relaxed));
  o["qps"] = uptime > 0 ? static_cast<double>(completed) / uptime : 0.0;
  o["p50_us"] = lats.empty() ? 0.0 : Percentile(lats, 50.0);
  o["p99_us"] = lats.empty() ? 0.0 : Percentile(lats, 99.0);
  o["inflight"] = static_cast<double>(gen->engine->inflight());
  o["queue_depth"] = static_cast<double>(gen->engine->queue_depth());
  o["connections"] = static_cast<double>(connection_count());
  {
    ServingCounters c = gen->engine->counters();
    json::Object e;
    e["queries"] = static_cast<double>(c.queries);
    e["batches"] = static_cast<double>(c.batches);
    e["rejected"] = static_cast<double>(c.rejected);
    e["distance_computations"] =
        static_cast<double>(c.distance_computations);
    o["engine"] = std::move(e);
  }
  // Per-shard probe counts when the current generation is sharded.
  if (const auto* sharded = dynamic_cast<const ShardedIndex*>(
          &gen->index.AsSearchIndex())) {
    json::Array probes;
    for (uint64_t p : sharded->probe_counts()) {
      probes.push_back(static_cast<double>(p));
    }
    o["shard_probes"] = std::move(probes);
  }
  return json::Dump(json::Value(std::move(o)));
}

// ---------------------------------------------------------------------------
// Swap.
// ---------------------------------------------------------------------------

Result<uint64_t> BlinkServer::Swap(const std::string& path) {
  return holder_->SwapFromArtifact(path, opts_.swap_open);
}

}  // namespace net
}  // namespace blink
