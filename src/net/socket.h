// Minimal POSIX TCP plumbing for the serving front end (DESIGN.md D13):
// an RAII connection, an RAII listener, and a connector — nothing more.
// Deliberately synchronous/blocking: the server runs one handler thread
// per connection (connection counts at this layer are bounded by
// ServerOptions::max_connections, and the expensive work per request is
// the search, not the socket write), and the closed-loop clients are
// blocking by nature.
//
// Cross-thread shutdown contract: Shutdown() on either class unblocks a
// peer thread parked in ReadFull()/Accept() — that is how the server
// stops its connection handlers without waiting for clients to hang up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace blink {
namespace net {

/// A connected TCP stream (RAII fd). Movable, not copyable.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  ~TcpConn() { Close(); }
  TcpConn(TcpConn&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  TcpConn& operator=(TcpConn&& o) noexcept {
    if (this != &o) {
      Close();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes exactly `n` bytes (retrying short writes/EINTR; EPIPE is an
  /// IOError, never a signal).
  Status WriteFull(const void* buf, size_t n);

  /// Reads exactly `n` bytes. A connection closed mid-read (or before the
  /// first byte) is an IOError; use ReadFullOrEof when a clean EOF at
  /// byte 0 is an expected outcome (end of a request stream).
  Status ReadFull(void* buf, size_t n);

  /// Like ReadFull, but a clean EOF before the first byte returns
  /// Result(false) instead of an error; true means all n bytes arrived.
  Result<bool> ReadFullOrEof(void* buf, size_t n);

  /// shutdown(2) both directions: any thread blocked in ReadFull on this
  /// connection wakes with an error. Safe to call from another thread;
  /// does not close the fd.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket. Bind with port 0 to get an ephemeral port
/// (port() reports the one actually bound — how the tests and the
/// --port 0 server run without colliding).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }
  TcpListener(TcpListener&& o) noexcept : fd_(o.fd_), port_(o.port_) {
    o.fd_ = -1;
    o.port_ = 0;
  }
  TcpListener& operator=(TcpListener&& o) noexcept {
    if (this != &o) {
      Close();
      fd_ = o.fd_;
      port_ = o.port_;
      o.fd_ = -1;
      o.port_ = 0;
    }
    return *this;
  }
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds + listens on host:port (SO_REUSEADDR; host must be a numeric
  /// IPv4 address, e.g. "127.0.0.1" or "0.0.0.0").
  static Result<TcpListener> Bind(const std::string& host, uint16_t port,
                                  int backlog = 128);

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

  /// Blocks for the next connection (TCP_NODELAY set). After Shutdown()
  /// from another thread, returns an IOError instead of blocking forever.
  Result<TcpConn> Accept();

  /// Unblocks a concurrent Accept(). Safe from another thread.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Connects to host:port (numeric IPv4 or resolvable name), TCP_NODELAY.
Result<TcpConn> TcpConnect(const std::string& host, uint16_t port);

/// Splits "host:port" (the tools' --connect argument).
Result<std::pair<std::string, uint16_t>> ParseHostPort(const std::string& s);

}  // namespace net
}  // namespace blink
