// Client side of the net/protocol.h frame protocol: one blocking
// connection, synchronous request/response. This is what the tools'
// --connect mode, the loopback tests, and the net bench speak; it is a
// thin correctness-first client, not a connection pool — open one
// BlinkClient per closed-loop worker thread.
#pragma once

#include <cstdint>
#include <string>

#include "net/protocol.h"
#include "net/socket.h"
#include "util/matrix.h"
#include "util/status.h"

namespace blink {
namespace net {

class BlinkClient {
 public:
  /// Connects to a running BlinkServer.
  static Result<BlinkClient> Connect(const std::string& host, uint16_t port);

  BlinkClient(BlinkClient&&) = default;
  BlinkClient& operator=(BlinkClient&&) = default;

  /// One search round trip. A non-kOk wire status (overloaded,
  /// shutting-down, bad-request) is a *successful* call — inspect
  /// `response->status`; only transport/framing failures return a non-OK
  /// Status. On kOk, ids/dists are row-major num_queries x k, padded per
  /// the eval/interface.h contract, and `generation` says which index
  /// generation served it.
  Status Search(MatrixViewF queries, uint32_t k, const SearchOptions& options,
                SearchResponse* response);

  /// Fetches the server's telemetry JSON (the same document as HTTP
  /// /stats).
  Status Stats(StatusTextResponse* response);

  /// Asks the server to hot-swap to `artifact_path`. On wire kOk,
  /// `response->generation` is the new generation number; on kError,
  /// `response->text` carries the server-side failure.
  Status Swap(const std::string& artifact_path, StatusTextResponse* response);

  /// Liveness round trip; `*status` is kOk or kShuttingDown.
  Status Ping(WireStatus* status);

  /// Half-close from another thread: unblocks a Search() stuck in a read.
  void Shutdown() { conn_.Shutdown(); }

 private:
  explicit BlinkClient(TcpConn conn) : conn_(std::move(conn)) {}

  /// Sends one frame and reads the one expected response frame.
  Status RoundTrip(FrameType request, const std::vector<uint8_t>& payload,
                   FrameType expected, std::vector<uint8_t>* response);

  TcpConn conn_;
  uint32_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace net
}  // namespace blink
