#include "data/groundtruth.h"

#include <algorithm>
#include <vector>

#include "simd/distance.h"

namespace blink {

namespace {

/// Fixed-size top-k collector with deterministic tie-breaking.
struct TopK {
  explicit TopK(size_t k) : k_(k) { heap_.reserve(k + 1); }

  // Max-heap on (dist, id): the root is the current worst candidate.
  void Offer(float dist, uint32_t id) {
    if (heap_.size() < k_) {
      heap_.push_back({dist, id});
      std::push_heap(heap_.begin(), heap_.end());
    } else if (std::pair<float, uint32_t>{dist, id} < heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = {dist, id};
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  /// Ascending (dist, id) order.
  std::vector<std::pair<float, uint32_t>> Sorted() {
    std::sort(heap_.begin(), heap_.end());
    return heap_;
  }

  size_t k_;
  std::vector<std::pair<float, uint32_t>> heap_;
};

}  // namespace

Matrix<uint32_t> ComputeGroundTruth(MatrixViewF base, MatrixViewF queries,
                                    size_t k, Metric metric, ThreadPool* pool) {
  const size_t n = base.rows, nq = queries.rows, d = base.cols;
  Matrix<uint32_t> gt(nq, k);
  const auto l2 = simd::GetL2F32(d);
  const auto ip = simd::GetIpF32(d);

  auto one_query = [&](size_t qi) {
    TopK top(k);
    const float* q = queries.row(qi);
    for (size_t i = 0; i < n; ++i) {
      const float dist = metric == Metric::kL2 ? l2(q, base.row(i), d)
                                               : ip(q, base.row(i), d);
      top.Offer(dist, static_cast<uint32_t>(i));
    }
    auto sorted = top.Sorted();
    uint32_t* row = gt.row(qi);
    for (size_t j = 0; j < k; ++j) {
      row[j] = j < sorted.size() ? sorted[j].second : UINT32_MAX;
    }
  };

  if (pool != nullptr) {
    pool->ParallelFor(nq, one_query);
  } else {
    for (size_t qi = 0; qi < nq; ++qi) one_query(qi);
  }
  return gt;
}

Matrix<uint32_t> ComputeFilteredGroundTruth(MatrixViewF base,
                                            MatrixViewF queries, size_t k,
                                            Metric metric,
                                            const MetadataStore& md,
                                            const Predicate& pred,
                                            ThreadPool* pool) {
  const size_t n = base.rows, nq = queries.rows, d = base.cols;
  std::vector<uint32_t> keep;
  for (size_t i = 0; i < n; ++i) {
    if (MatchesPredicate(md, pred, static_cast<uint32_t>(i))) {
      keep.push_back(static_cast<uint32_t>(i));
    }
  }
  Matrix<uint32_t> gt(nq, k);
  const auto l2 = simd::GetL2F32(d);
  const auto ip = simd::GetIpF32(d);

  auto one_query = [&](size_t qi) {
    TopK top(k);
    const float* q = queries.row(qi);
    for (uint32_t i : keep) {
      const float dist = metric == Metric::kL2 ? l2(q, base.row(i), d)
                                               : ip(q, base.row(i), d);
      top.Offer(dist, i);
    }
    auto sorted = top.Sorted();
    uint32_t* row = gt.row(qi);
    for (size_t j = 0; j < k; ++j) {
      row[j] = j < sorted.size() ? sorted[j].second : UINT32_MAX;
    }
  };

  if (pool != nullptr) {
    pool->ParallelFor(nq, one_query);
  } else {
    for (size_t qi = 0; qi < nq; ++qi) one_query(qi);
  }
  return gt;
}

}  // namespace blink
