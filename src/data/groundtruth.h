// Exact nearest-neighbor ground truth via brute force (the metric substrate
// every recall number in the paper is computed against).
#pragma once

#include <cstdint>

#include "filter/metadata.h"
#include "graph/storage.h"
#include "util/matrix.h"
#include "util/thread_pool.h"

namespace blink {

/// Exact top-k ids for every query (row-major nq x k, ascending distance).
/// Ties break toward the lower id, deterministically.
Matrix<uint32_t> ComputeGroundTruth(MatrixViewF base, MatrixViewF queries,
                                    size_t k, Metric metric,
                                    ThreadPool* pool = nullptr);

/// Exact top-k restricted to base rows matching `pred` against `md` — the
/// reference every filtered-search recall number is scored against. Rows
/// beyond the match count pad with UINT32_MAX (fewer than k rows may
/// match a selective predicate).
Matrix<uint32_t> ComputeFilteredGroundTruth(MatrixViewF base,
                                            MatrixViewF queries, size_t k,
                                            Metric metric,
                                            const MetadataStore& md,
                                            const Predicate& pred,
                                            ThreadPool* pool = nullptr);

/// Decodes an entire compressed dataset (anything with size()/dim()/
/// Decode(i, out)) into a float matrix. Used by the exhaustive-search-over-
/// compressed-vectors experiments (Sec. 4.2 / Fig. 6, Sec. 6.6 / Fig. 11).
template <typename CompressedDataset>
MatrixF DecodeAll(const CompressedDataset& ds) {
  MatrixF out(ds.size(), ds.dim());
  for (size_t i = 0; i < ds.size(); ++i) ds.Decode(i, out.row(i));
  return out;
}

}  // namespace blink
