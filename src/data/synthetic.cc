#include "data/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "util/prng.h"

namespace blink {

namespace {

/// Per-dimension scale profile: a smoothly decaying spectrum, mimicking the
/// variance decay of learned embeddings after their dominant directions.
std::vector<float> ScaleProfile(size_t d, float base_scale, Rng& rng) {
  std::vector<float> s(d);
  for (size_t j = 0; j < d; ++j) {
    const float decay =
        1.0f / std::sqrt(1.0f + 0.02f * static_cast<float>(j));
    const float jitter = 0.8f + 0.4f * rng.UniformFloat();
    s[j] = base_scale * decay * jitter;
  }
  return s;
}

/// Per-dimension mean offsets (paper Fig. 3: raw dimensions have distinct
/// means, which is exactly what LVQ's de-meaning removes).
std::vector<float> MeanProfile(size_t d, float spread, Rng& rng) {
  std::vector<float> m(d);
  for (size_t j = 0; j < d; ++j) m[j] = rng.Gaussian(0.0f, spread);
  return m;
}

struct MixtureModel {
  std::vector<float> mean;     // d
  std::vector<float> scale;    // d
  MatrixF centers;             // clusters x d
  float center_weight = 1.0f;  // cluster separation vs noise
};

MixtureModel MakeMixture(size_t d, size_t clusters, float base_scale,
                         float mean_spread, float separation, Rng& rng) {
  MixtureModel m;
  m.mean = MeanProfile(d, mean_spread, rng);
  m.scale = ScaleProfile(d, base_scale, rng);
  m.centers = MatrixF(clusters, d);
  for (size_t c = 0; c < clusters; ++c) {
    float* row = m.centers.row(c);
    for (size_t j = 0; j < d; ++j) {
      row[j] = rng.Gaussian(0.0f, separation * m.scale[j]);
    }
  }
  m.center_weight = 1.0f;
  return m;
}

void SampleWith(const MatrixF& centers, const std::vector<float>& mean,
                const std::vector<float>& scale, MatrixF* out, Rng& rng) {
  const size_t d = out->cols();
  for (size_t i = 0; i < out->rows(); ++i) {
    const float* center = centers.row(rng.Bounded(centers.rows()));
    float* row = out->row(i);
    for (size_t j = 0; j < d; ++j) {
      row[j] = mean[j] + center[j] + scale[j] * rng.Gaussian();
    }
  }
}

void SampleFrom(const MixtureModel& m, MatrixF* out, Rng& rng) {
  SampleWith(m.centers, m.mean, m.scale, out, rng);
}

void AbsInPlace(MatrixF* m, float scale) {
  for (size_t i = 0; i < m->rows(); ++i) {
    float* row = m->row(i);
    for (size_t j = 0; j < m->cols(); ++j) {
      row[j] = std::fabs(row[j]) * scale;
    }
  }
}

}  // namespace

void NormalizeRows(MatrixF* m) {
  for (size_t i = 0; i < m->rows(); ++i) {
    float* row = m->row(i);
    double norm2 = 0.0;
    for (size_t j = 0; j < m->cols(); ++j) {
      norm2 += static_cast<double>(row[j]) * row[j];
    }
    const float inv =
        norm2 > 0.0 ? static_cast<float>(1.0 / std::sqrt(norm2)) : 0.0f;
    for (size_t j = 0; j < m->cols(); ++j) row[j] *= inv;
  }
}

Dataset GenerateDataset(const SyntheticSpec& spec, ThreadPool* /*pool*/) {
  Dataset ds;
  ds.base = MatrixF(spec.n, spec.d);
  ds.queries = MatrixF(spec.nq, spec.d);
  Rng rng(spec.seed);

  switch (spec.family) {
    case DatasetFamily::kDeep: {
      // deep-96-like: clusterable embeddings, unit norm, cosine similarity.
      MixtureModel m = MakeMixture(spec.d, spec.clusters, /*base_scale=*/0.35f,
                                   /*mean_spread=*/0.10f, /*separation=*/1.6f,
                                   rng);
      SampleFrom(m, &ds.base, rng);
      SampleFrom(m, &ds.queries, rng);
      NormalizeRows(&ds.base);
      NormalizeRows(&ds.queries);
      ds.metric = Metric::kL2;  // cosine on normalized vectors
      ds.name = "deep-" + std::to_string(spec.d) + "-like";
      break;
    }
    case DatasetFamily::kGlove: {
      // GloVe-like word embeddings: wider means, cosine.
      MixtureModel m = MakeMixture(spec.d, spec.clusters, /*base_scale=*/1.2f,
                                   /*mean_spread=*/0.5f, /*separation=*/1.3f,
                                   rng);
      SampleFrom(m, &ds.base, rng);
      SampleFrom(m, &ds.queries, rng);
      NormalizeRows(&ds.base);
      NormalizeRows(&ds.queries);
      ds.metric = Metric::kL2;
      ds.name = "glove-" + std::to_string(spec.d) + "-like";
      break;
    }
    case DatasetFamily::kSift: {
      // SIFT-like: non-negative gradient-histogram descriptors, L2.
      MixtureModel m = MakeMixture(spec.d, spec.clusters, /*base_scale=*/18.0f,
                                   /*mean_spread=*/8.0f, /*separation=*/1.5f,
                                   rng);
      SampleFrom(m, &ds.base, rng);
      SampleFrom(m, &ds.queries, rng);
      AbsInPlace(&ds.base, 1.0f);
      AbsInPlace(&ds.queries, 1.0f);
      ds.metric = Metric::kL2;
      ds.name = "sift-" + std::to_string(spec.d) + "-like";
      break;
    }
    case DatasetFamily::kGist: {
      // GIST-like: non-negative global image descriptors, small values, L2.
      MixtureModel m = MakeMixture(spec.d, spec.clusters, /*base_scale=*/0.045f,
                                   /*mean_spread=*/0.02f, /*separation=*/1.4f,
                                   rng);
      SampleFrom(m, &ds.base, rng);
      SampleFrom(m, &ds.queries, rng);
      AbsInPlace(&ds.base, 1.0f);
      AbsInPlace(&ds.queries, 1.0f);
      ds.metric = Metric::kL2;
      ds.name = "gist-" + std::to_string(spec.d) + "-like";
      break;
    }
    case DatasetFamily::kDpr: {
      // DPR-like: unnormalized LLM embeddings, inner product.
      MixtureModel m = MakeMixture(spec.d, spec.clusters, /*base_scale=*/0.8f,
                                   /*mean_spread=*/0.25f, /*separation=*/1.2f,
                                   rng);
      SampleFrom(m, &ds.base, rng);
      SampleFrom(m, &ds.queries, rng);
      ds.metric = Metric::kInnerProduct;
      ds.name = "dpr-" + std::to_string(spec.d) + "-like";
      break;
    }
    case DatasetFamily::kT2i: {
      // text2image-like: queries (text) and base (images) come from
      // correlated but distinct distributions (cross-modal mismatch).
      MixtureModel m = MakeMixture(spec.d, spec.clusters, /*base_scale=*/0.6f,
                                   /*mean_spread=*/0.15f, /*separation=*/1.4f,
                                   rng);
      SampleFrom(m, &ds.base, rng);
      // Query modality: same centers, shifted mean, wider noise.
      Rng rng_q(spec.seed ^ 0x7E57ull);
      std::vector<float> q_mean = m.mean;
      std::vector<float> q_scale = m.scale;
      for (size_t j = 0; j < spec.d; ++j) {
        q_mean[j] += rng_q.Gaussian(0.0f, 0.1f);
        q_scale[j] *= 1.3f;
      }
      SampleWith(m.centers, q_mean, q_scale, &ds.queries, rng_q);
      ds.metric = Metric::kInnerProduct;
      ds.name = "t2i-" + std::to_string(spec.d) + "-like";
      break;
    }
  }
  return ds;
}

Dataset MakeDeepLike(size_t n, size_t nq, uint64_t seed) {
  SyntheticSpec s;
  s.family = DatasetFamily::kDeep;
  s.n = n;
  s.nq = nq;
  s.d = 96;
  s.seed = seed;
  return GenerateDataset(s);
}

Dataset MakeGistLike(size_t n, size_t nq, uint64_t seed) {
  SyntheticSpec s;
  s.family = DatasetFamily::kGist;
  s.n = n;
  s.nq = nq;
  s.d = 960;
  s.clusters = 32;
  s.seed = seed;
  return GenerateDataset(s);
}

Dataset MakeSiftLike(size_t n, size_t nq, uint64_t seed) {
  SyntheticSpec s;
  s.family = DatasetFamily::kSift;
  s.n = n;
  s.nq = nq;
  s.d = 128;
  s.seed = seed;
  return GenerateDataset(s);
}

Dataset MakeGloveLike(size_t d, size_t n, size_t nq, uint64_t seed) {
  SyntheticSpec s;
  s.family = DatasetFamily::kGlove;
  s.n = n;
  s.nq = nq;
  s.d = d;
  s.seed = seed;
  return GenerateDataset(s);
}

Dataset MakeDprLike(size_t n, size_t nq, uint64_t seed) {
  SyntheticSpec s;
  s.family = DatasetFamily::kDpr;
  s.n = n;
  s.nq = nq;
  s.d = 768;
  s.clusters = 48;
  s.seed = seed;
  return GenerateDataset(s);
}

Dataset MakeT2iLike(size_t n, size_t nq, uint64_t seed) {
  SyntheticSpec s;
  s.family = DatasetFamily::kT2i;
  s.n = n;
  s.nq = nq;
  s.d = 200;
  s.seed = seed;
  return GenerateDataset(s);
}

void ModifyDatasetVariance(MatrixF* base, MatrixF* queries,
                           double perc_diff_var, double low_factor,
                           double high_factor, uint64_t seed) {
  assert(base->cols() == queries->cols());
  const size_t d = base->cols();
  const size_t num_mod = static_cast<size_t>(static_cast<double>(d) * perc_diff_var);
  Rng rng(seed);
  // Choose num_mod distinct dimensions (partial Fisher-Yates).
  std::vector<size_t> dims(d);
  for (size_t j = 0; j < d; ++j) dims[j] = j;
  for (size_t j = 0; j < num_mod; ++j) {
    std::swap(dims[j], dims[j + rng.Bounded(d - j)]);
  }
  std::vector<float> factor(num_mod);
  for (size_t j = 0; j < num_mod; ++j) {
    factor[j] = rng.Uniform(static_cast<float>(low_factor),
                            static_cast<float>(high_factor));
  }
  auto apply = [&](MatrixF* m) {
    for (size_t i = 0; i < m->rows(); ++i) {
      float* row = m->row(i);
      for (size_t j = 0; j < num_mod; ++j) row[dims[j]] *= factor[j];
    }
  };
  apply(base);
  apply(queries);
}

Dataset MakeRandomVarVar(size_t n, size_t nq, size_t d, uint64_t seed) {
  Dataset ds;
  ds.base = MatrixF(n, d);
  ds.queries = MatrixF(nq, d);
  Rng rng(seed);
  // 20% of dimensions with stddev in [10, 100]; the rest in [0.1, 1.0]
  // (paper Appendix A.1, generate_dataset_variable_variance).
  const size_t num_large = d / 5;
  std::vector<float> scale(d);
  for (size_t j = 0; j < d; ++j) {
    scale[j] = j + num_large >= d ? rng.Uniform(10.0f, 100.0f)
                                  : rng.Uniform(0.1f, 1.0f);
  }
  auto fill = [&](MatrixF* m) {
    for (size_t i = 0; i < m->rows(); ++i) {
      float* row = m->row(i);
      for (size_t j = 0; j < d; ++j) row[j] = scale[j] * rng.Gaussian();
    }
  };
  fill(&ds.base);
  fill(&ds.queries);
  ds.metric = Metric::kL2;
  ds.name = "random-" + std::to_string(d) + "-varvar";
  return ds;
}

}  // namespace blink
