// Synthetic stand-ins for the paper's evaluation datasets (Table 2).
//
// The public corpora (deep-1B, sift, gist, glove, text2image, DPR/C4) are
// not available offline, so each family is replaced by a statistically
// matched generator: same dimensionality, same similarity function, and —
// crucially for LVQ — the same qualitative per-dimension structure the
// paper measures in Figs. 2/3/14: per-dimension means differ, per-dimension
// spreads are of similar magnitude after de-meaning, and vectors
// concentrate in clusters (deep-learning embeddings are clusterable, which
// is what makes graph search non-trivial).
//
// Generation model: a Gaussian mixture
//     x = mu_dim + C_k + s ⊙ z,  z ~ N(0, I),
// with per-dimension offsets mu_dim, cluster centers C_k, and a
// per-dimension scale profile s, followed by family post-processing
// (normalization for cosine-similarity families, non-negativity for
// SIFT/GIST-like descriptors). Queries are drawn from the same mixture
// (except t2i-like, which models the paper's cross-modal query/base
// distribution mismatch).
//
// The Appendix A.1 robustness datasets (pathological per-dimension
// variances) are also provided: ModifyDatasetVariance mirrors the paper's
// published modification code, and MakeRandomVarVar the random-96-1M set.
#pragma once

#include <string>

#include "graph/storage.h"
#include "util/matrix.h"
#include "util/thread_pool.h"

namespace blink {

/// The dataset families of Table 2.
enum class DatasetFamily {
  kDeep,   ///< deep-96-*: d=96, unit norm, cosine (searched as L2)
  kGist,   ///< gist-960-1M: d=960, non-negative descriptors, L2
  kSift,   ///< sift-128-1M: d=128, non-negative integer-like, L2
  kGlove,  ///< glove-25/50: word embeddings, cosine (searched as L2)
  kDpr,    ///< DPR-768-10M: LLM passage embeddings, inner product
  kT2i,    ///< t2i-200-100M: cross-modal, inner product
};

struct SyntheticSpec {
  DatasetFamily family = DatasetFamily::kDeep;
  size_t n = 10000;   ///< base vectors
  size_t nq = 1000;   ///< queries
  size_t d = 96;      ///< dimensionality
  size_t clusters = 64;
  uint64_t seed = 1234;
};

/// A generated dataset: base vectors, queries, and the similarity function
/// the family is searched with. Cosine families arrive pre-normalized and
/// use kL2, exactly as the paper evaluates them.
struct Dataset {
  MatrixF base;
  MatrixF queries;
  Metric metric = Metric::kL2;
  std::string name;
};

Dataset GenerateDataset(const SyntheticSpec& spec, ThreadPool* pool = nullptr);

// Convenience constructors matching the paper's dataset names.
Dataset MakeDeepLike(size_t n, size_t nq, uint64_t seed = 1234);
Dataset MakeGistLike(size_t n, size_t nq, uint64_t seed = 1234);
Dataset MakeSiftLike(size_t n, size_t nq, uint64_t seed = 1234);
Dataset MakeGloveLike(size_t d, size_t n, size_t nq, uint64_t seed = 1234);
Dataset MakeDprLike(size_t n, size_t nq, uint64_t seed = 1234);
Dataset MakeT2iLike(size_t n, size_t nq, uint64_t seed = 1234);

/// Appendix A.1: scales a random `perc_diff_var` fraction of dimensions of
/// base and queries by factors uniform in [low_factor, high_factor]
/// (the paper's modify_dataset_variance).
void ModifyDatasetVariance(MatrixF* base, MatrixF* queries,
                           double perc_diff_var, double low_factor,
                           double high_factor, uint64_t seed);

/// Appendix A.1: Gaussian dataset where 20% of dimensions have stddev in
/// [10, 100] and the rest in [0.1, 1] (the paper's random-96-1M,
/// generate_dataset_variable_variance).
Dataset MakeRandomVarVar(size_t n, size_t nq, size_t d, uint64_t seed = 1234);

/// Normalizes every row to unit L2 norm (cosine-to-L2 reduction).
void NormalizeRows(MatrixF* m);

}  // namespace blink
