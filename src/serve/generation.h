// Zero-downtime index hot-swap (DESIGN.md D13): a generation-numbered
// holder of {Index, ServingEngine} pairs with atomic cutover.
//
// The serving problem this solves: a long-lived server must replace its
// index (rebuilt artifact, recovered shard, bigger dataset) without
// dropping the queries already in flight and without a stop-the-world
// pause. The mmap-backed Open (D12) makes *acquiring* the replacement
// cheap; this layer makes *installing* it safe:
//
//   1. The replacement is Open()ed or built in the background — no query
//      ever waits on it.
//   2. Cutover is one pointer swap under a short lock: every request that
//      calls Current() after the swap sees the new generation; requests
//      that grabbed the old one keep a shared_ptr reference and finish
//      against it.
//   3. The old generation is drained (ServingEngine::Drain — the engine's
//      in-flight accounting is the epoch analog at this layer) and then
//      destroyed when the last in-flight request releases its reference,
//      so no query ever touches a freed index. Searches *inside* each
//      generation are additionally guarded by the existing epoch machinery
//      (util/epoch.h) where the flavor needs it.
//
// Layering note: this file sits *above* the api/ facade — it swaps whole
// Index handles — like src/net/ does; the ServingEngine below knows
// nothing about generations.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "api/index.h"
#include "serve/engine.h"
#include "util/status.h"

namespace blink {

/// One servable index generation. Immutable after install except through
/// the engine (which is internally synchronized). `engine` is declared
/// after `index` so it is destroyed first — it holds a non-owning pointer
/// into the handle.
struct ServingGeneration {
  uint64_t number = 0;   ///< 1 for the first install, +1 per swap
  std::string source;    ///< artifact path, or "<built>" for in-process builds
  Index index;
  std::unique_ptr<ServingEngine> engine;
};

/// Owns the current generation and performs atomic hot-swaps. Current() is
/// cheap and safe from any number of request threads; swaps are serialized
/// against each other and never block readers for longer than the pointer
/// exchange.
class GenerationHolder {
 public:
  /// Installs `index` as generation 1 with an engine built from
  /// `serve_options` (validated; degenerate options are an error).
  static Result<std::unique_ptr<GenerationHolder>> Create(
      Index index, const ServingOptions& serve_options,
      std::string source = "<built>");

  GenerationHolder(const GenerationHolder&) = delete;
  GenerationHolder& operator=(const GenerationHolder&) = delete;

  /// The generation to serve this request from. Hold the returned
  /// shared_ptr for the duration of the request: it keeps the generation
  /// (index + engine) alive across a concurrent swap.
  std::shared_ptr<ServingGeneration> Current() const;

  /// Installs `next` as the new generation: validates it against the
  /// current one (same dimensionality — in-flight queries are sized for
  /// it), stands up its engine, swaps the pointer, then drains the old
  /// generation's engine. Returns the new generation number. The old
  /// generation is destroyed once its last in-flight request completes.
  Result<uint64_t> SwapTo(Index next, std::string source = "<swapped>");

  /// Open(path)s a replacement artifact (map mode when `open_options`
  /// asks for it — the cheap path) and SwapTo()s it. The Open runs on the
  /// calling thread, which is never a search thread: background-loading
  /// is the caller's thread structure, cutover is this class's.
  Result<uint64_t> SwapFromArtifact(const std::string& path,
                                    const OpenOptions& open_options = {});

  /// Completed swaps (not counting the initial install).
  uint64_t swap_count() const {
    return swaps_.load(std::memory_order_relaxed);
  }
  /// The current generation number (1-based).
  uint64_t generation() const;

 private:
  GenerationHolder(std::shared_ptr<ServingGeneration> first,
                   const ServingOptions& serve_options)
      : current_(std::move(first)), serve_options_(serve_options) {}

  /// Builds the {index, engine} pair for one generation.
  static Result<std::shared_ptr<ServingGeneration>> MakeGeneration(
      Index index, const ServingOptions& serve_options, uint64_t number,
      std::string source);

  mutable std::mutex mu_;    ///< guards current_ (pointer reads + the swap)
  std::mutex swap_mu_;       ///< serializes whole swaps (engine spin-up, drain)
  std::shared_ptr<ServingGeneration> current_;
  ServingOptions serve_options_;
  std::atomic<uint64_t> swaps_{0};
};

}  // namespace blink
