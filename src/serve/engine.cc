#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "util/env.h"

namespace blink {

// ---------------------------------------------------------------------------
// ServingEngine.
// ---------------------------------------------------------------------------

ServingEngine::ServingEngine(const SearchIndex* index,
                             const ServingOptions& options)
    : index_(index), opts_(options) {
  if (opts_.num_threads == 0) opts_.num_threads = NumThreads();
  // Degenerate values are rejected with a Status at the configuration
  // boundary (ServingOptions::Validate, called by Index::Serve and the
  // server tools). The clamps below are last-resort defense for direct
  // constructions that skipped Validate — a 0 here would dispatch empty
  // batches forever / never admit a query.
  if (opts_.max_batch == 0) opts_.max_batch = 1;
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
  pool_ = std::make_unique<ThreadPool>(opts_.num_threads);
  searchers_.reserve(opts_.num_threads);
  free_.reserve(opts_.num_threads);
  for (size_t i = 0; i < opts_.num_threads; ++i) {
    searchers_.push_back(index_->MakeSearcher());
    free_.push_back(searchers_.back().get());
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

ServingEngine::~ServingEngine() {
  {
    std::unique_lock<std::mutex> lk(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();  // flushes the remaining queue into final batches
  Drain();
  pool_.reset();  // runs any still-pending batch tasks before joining
}

Searcher* ServingEngine::AcquireSearcher() {
  std::unique_lock<std::mutex> lk(free_mu_);
  free_cv_.wait(lk, [this] { return !free_.empty(); });
  Searcher* s = free_.back();
  free_.pop_back();
  return s;
}

void ServingEngine::ReleaseSearcher(Searcher* s) {
  {
    std::unique_lock<std::mutex> lk(free_mu_);
    free_.push_back(s);
  }
  free_cv_.notify_one();
}

void ServingEngine::SearchBatch(MatrixViewF queries, size_t k,
                                const SearchOptions& params, uint32_t* ids,
                                float* dists, BatchStats* stats) {
  const size_t nq = queries.rows;
  if (nq == 0) return;
  BatchStats total;
  RunBatchSlices(
      nq, searchers_.size(), pool_.get(), &total,
      [&](size_t, size_t lo, size_t hi, BatchStats* slice_stats) {
        Searcher* searcher = AcquireSearcher();
        for (size_t qi = lo; qi < hi; ++qi) {
          searcher->Search(queries.row(qi), k, params, ids + qi * k,
                           dists != nullptr ? dists + qi * k : nullptr,
                           slice_stats);
        }
        ReleaseSearcher(searcher);
      });
  queries_.fetch_add(nq, std::memory_order_relaxed);
  distance_computations_.fetch_add(total.distance_computations,
                                   std::memory_order_relaxed);
  hops_.fetch_add(total.hops, std::memory_order_relaxed);
  if (stats != nullptr) {
    stats->distance_computations += total.distance_computations;
    stats->hops += total.hops;
  }
}

std::future<SearchResult> ServingEngine::Submit(const float* query, size_t k,
                                                const SearchOptions& params) {
  Request req;
  req.query.assign(query, query + index_->dim());
  req.k = k;
  req.params = params;
  std::future<SearchResult> fut = req.promise.get_future();
  inflight_.fetch_add(1, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lk(queue_mu_);
    capacity_cv_.wait(
        lk, [this] { return queue_.size() < opts_.queue_capacity || stop_; });
    if (stop_) {  // engine shutting down: fail fast, contract-shaped
      lk.unlock();
      // Padded like a real answer so result-shape invariants hold, but
      // tagged kShutdown: a zero-hit answer and a never-ran query used to
      // be indistinguishable here, which poisoned recall accounting.
      SearchResult empty;
      empty.ids.assign(k, kInvalidId);
      empty.dists.assign(k, kInvalidDist);
      empty.outcome = SearchOutcome::kShutdown;
      req.promise.set_value(std::move(empty));
      // Same completion protocol as ProcessBatch: a concurrent Drain()
      // waiting on this query must be woken.
      if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::unique_lock<std::mutex> drain_lk(drain_mu_);
        drain_cv_.notify_all();
      }
      return fut;
    }
    queue_.push_back(std::move(req));
  }
  queue_cv_.notify_all();
  return fut;
}

ServingEngine::SubmitOutcome ServingEngine::TrySubmit(
    const float* query, size_t k, const SearchOptions& params,
    std::future<SearchResult>* out) {
  // Admission bound: queued + executing. (Submit's producer backpressure
  // waits on the queue alone, which the dispatcher drains eagerly into the
  // worker pool; an admission decision has to count the work that is
  // already past the queue or the bound is porous under load.)
  for (;;) {
    uint64_t cur = inflight_.load(std::memory_order_relaxed);
    if (cur >= opts_.queue_capacity) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return SubmitOutcome::kRejectedOverload;
    }
    // Reserve the slot before touching the queue so concurrent TrySubmits
    // cannot overshoot the capacity between check and enqueue.
    if (inflight_.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
  Request req;
  req.query.assign(query, query + index_->dim());
  req.k = k;
  req.params = params;
  std::future<SearchResult> fut = req.promise.get_future();
  {
    std::unique_lock<std::mutex> lk(queue_mu_);
    if (stop_) {
      lk.unlock();
      // Roll the reservation back (waking a concurrent Drain if we were
      // the last) — the caller gets the rejection, not a future.
      if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::unique_lock<std::mutex> drain_lk(drain_mu_);
        drain_cv_.notify_all();
      }
      return SubmitOutcome::kRejectedShutdown;
    }
    queue_.push_back(std::move(req));
  }
  queue_cv_.notify_all();
  *out = std::move(fut);
  return SubmitOutcome::kAccepted;
}

size_t ServingEngine::queue_depth() const {
  std::unique_lock<std::mutex> lk(queue_mu_);
  return queue_.size();
}

void ServingEngine::DispatcherLoop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty() && stop_) return;
      // Micro-batching: linger briefly for more queries unless the batch is
      // already full or we are shutting down.
      if (queue_.size() < opts_.max_batch && !stop_) {
        queue_cv_.wait_for(
            lk, std::chrono::microseconds(opts_.batch_linger_us),
            [this] { return queue_.size() >= opts_.max_batch || stop_; });
      }
      const size_t take = std::min(queue_.size(), opts_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    capacity_cv_.notify_all();
    batches_.fetch_add(1, std::memory_order_relaxed);
    // shared_ptr because ThreadPool tasks are std::function (copyable) and
    // Request is move-only (promise).
    auto b = std::make_shared<std::vector<Request>>(std::move(batch));
    pool_->Submit([this, b] { ProcessBatch(std::move(*b)); });
  }
}

void ServingEngine::ProcessBatch(std::vector<Request> batch) {
  Searcher* searcher = AcquireSearcher();
  std::vector<SearchResult> results(batch.size());
  BatchStats stats;
  for (size_t i = 0; i < batch.size(); ++i) {
    SearchResult& res = results[i];
    res.ids.resize(batch[i].k);
    res.dists.resize(batch[i].k);
    BatchStats qs;
    searcher->Search(batch[i].query.data(), batch[i].k, batch[i].params,
                     res.ids.data(), res.dists.data(), &qs);
    res.distance_computations = qs.distance_computations;
    res.hops = qs.hops;
    stats.distance_computations += qs.distance_computations;
    stats.hops += qs.hops;
  }
  ReleaseSearcher(searcher);
  // Counters before promises (a client must see its query counted once its
  // future resolves); promises before the inflight decrement (Drain()
  // guarantees resolved futures).
  queries_.fetch_add(batch.size(), std::memory_order_relaxed);
  distance_computations_.fetch_add(stats.distance_computations,
                                   std::memory_order_relaxed);
  hops_.fetch_add(stats.hops, std::memory_order_relaxed);
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(std::move(results[i]));
  }
  if (inflight_.fetch_sub(batch.size(), std::memory_order_acq_rel) ==
      batch.size()) {
    std::unique_lock<std::mutex> lk(drain_mu_);
    drain_cv_.notify_all();
  }
}

void ServingEngine::Drain() {
  std::unique_lock<std::mutex> lk(drain_mu_);
  drain_cv_.wait(lk, [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

ServingCounters ServingEngine::counters() const {
  ServingCounters c;
  c.queries = queries_.load(std::memory_order_relaxed);
  c.batches = batches_.load(std::memory_order_relaxed);
  c.distance_computations =
      distance_computations_.load(std::memory_order_relaxed);
  c.hops = hops_.load(std::memory_order_relaxed);
  c.rejected = rejected_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace blink
