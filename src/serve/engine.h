// Concurrent serving engine (DESIGN.md D7): the layer between a built index
// and heavy multi-client traffic.
//
// The Sec. 5 engine is tuned for single-batch throughput; serving adds two
// things it lacks:
//
//   1. Searcher pools. SearchBatch constructs a fresh GreedySearcher — and
//      its visited array and scratch — per slice per call, which is pure
//      overhead when requests arrive as many small batches. The engine owns
//      `num_threads` reusable Searcher instances (SearchIndex::
//      MakeSearcher()) whose state stays warm across requests: the visited
//      epochs in particular make "reset" a counter bump instead of an
//      O(n) zeroing.
//
//   2. An async submission path with micro-batching. Submit() enqueues one
//      query and returns a future; a dispatcher thread collects queries for
//      up to `batch_linger_us` (or until `max_batch` are waiting) and ships
//      them to the worker pool as one task, amortizing queue and wakeup
//      costs under high concurrency — the FAISS-style batching argument.
//
// The engine serves any SearchIndex. Static indices (VamanaIndex) are
// immutable and need no coordination; the dynamic index is served through
// DynamicIndexView below, whose reads ride DynamicIndex's epoch-based read
// guard so searches proceed concurrently with Insert/Delete/Consolidate.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "eval/interface.h"
#include "filter/metadata.h"
#include "graph/dynamic.h"
#include "graph/search.h"
#include "util/thread_pool.h"

namespace blink {

struct ServingOptions {
  size_t num_threads = 0;      ///< searcher-pool size; 0 = env NumThreads()
  size_t max_batch = 32;       ///< async micro-batch: dispatch at this many
  size_t batch_linger_us = 100;  ///< ... or this long after the first query
  size_t queue_capacity = 1 << 16;  ///< async backpressure bound

  /// OK iff the options describe a servable configuration. Degenerate
  /// values (`max_batch == 0` dispatches empty batches forever;
  /// `queue_capacity == 0` can never admit a query) are rejected here —
  /// Index::Serve() and the server tools call this at the configuration
  /// boundary and return the Status instead of standing up a broken
  /// engine. (The constructor additionally clamps as a last-resort
  /// defense for direct, pre-Validate constructions.)
  Status Validate() const {
    if (max_batch == 0) {
      return Status::InvalidArgument(
          "ServingOptions::max_batch must be >= 1 (0 would dispatch empty "
          "micro-batches forever)");
    }
    if (queue_capacity == 0) {
      return Status::InvalidArgument(
          "ServingOptions::queue_capacity must be >= 1 (0 can never admit "
          "a query)");
    }
    if (num_threads > (1u << 12)) {
      return Status::InvalidArgument(
          "ServingOptions::num_threads out of range (> 4096)");
    }
    if (batch_linger_us > 10'000'000) {
      return Status::InvalidArgument(
          "ServingOptions::batch_linger_us out of range (> 10s)");
    }
    return Status::OK();
  }
};

/// Aggregate counters since engine construction (monotonic, thread-safe).
struct ServingCounters {
  uint64_t queries = 0;
  uint64_t batches = 0;  ///< async micro-batches dispatched
  uint64_t distance_computations = 0;
  uint64_t hops = 0;
  uint64_t rejected = 0;  ///< TrySubmit admissions refused (overload)
};

class ServingEngine {
 public:
  /// The engine keeps a non-owning reference; `index` must outlive it.
  ServingEngine(const SearchIndex* index, const ServingOptions& options);
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Synchronous batch search across the pooled searchers. Writes row-major
  /// ids (queries.rows x k, padded with kInvalidId) and, when given,
  /// per-query dists (+inf padding) and aggregate stats for this call.
  /// Thread-safe: any number of client threads may call concurrently; they
  /// share the searcher pool.
  void SearchBatch(MatrixViewF queries, size_t k, const SearchOptions& params,
                   uint32_t* ids, float* dists = nullptr,
                   BatchStats* stats = nullptr);

  /// Asynchronous single-query submission (the query is copied). The future
  /// resolves to exactly k ids/dists (padded). Blocks only when
  /// `queue_capacity` queries are already waiting. During shutdown the
  /// future resolves immediately with outcome == SearchOutcome::kShutdown
  /// (all-padded ids), distinguishable from a real zero-hit answer.
  /// Thread-safe.
  std::future<SearchResult> Submit(const float* query, size_t k,
                                   const SearchOptions& params);

  /// Non-blocking admission-controlled submission (the network edge's
  /// path): kAccepted stores the future in `*out`; kRejectedOverload means
  /// `queue_capacity` queries are already in flight (queued + executing)
  /// and nothing was enqueued — the caller answers with a rejection
  /// instead of blocking its socket thread; kRejectedShutdown means the
  /// engine is stopping. `*out` is untouched unless kAccepted. Thread-safe.
  enum class SubmitOutcome { kAccepted, kRejectedOverload, kRejectedShutdown };
  SubmitOutcome TrySubmit(const float* query, size_t k,
                          const SearchOptions& params,
                          std::future<SearchResult>* out);

  /// Blocks until every previously submitted async query has completed.
  void Drain();

  const SearchIndex& index() const { return *index_; }
  size_t num_threads() const { return searchers_.size(); }
  ServingCounters counters() const;
  /// Async queries admitted but not yet resolved (queued + executing).
  size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  /// Async queries waiting for the dispatcher (a subset of inflight()).
  size_t queue_depth() const;

 private:
  struct Request {
    std::vector<float> query;
    size_t k;
    SearchOptions params;
    std::promise<SearchResult> promise;
  };

  Searcher* AcquireSearcher();
  void ReleaseSearcher(Searcher* s);
  void DispatcherLoop();
  void ProcessBatch(std::vector<Request> batch);

  const SearchIndex* index_;
  ServingOptions opts_;
  std::unique_ptr<ThreadPool> pool_;

  // Searcher pool: a free-list guarded by a mutex; Acquire blocks until one
  // is available (deadlock-free: a slice holds at most one searcher).
  std::vector<std::unique_ptr<Searcher>> searchers_;
  std::vector<Searcher*> free_;
  std::mutex free_mu_;
  std::condition_variable free_cv_;

  // Async queue + dispatcher.
  std::deque<Request> queue_;
  mutable std::mutex queue_mu_;  // mutable: queue_depth() is a const probe
  std::condition_variable queue_cv_;      // dispatcher wakeups
  std::condition_variable capacity_cv_;   // producer backpressure
  bool stop_ = false;
  std::atomic<uint64_t> inflight_{0};     // queued + executing async queries
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::thread dispatcher_;

  // Counters.
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> distance_computations_{0};
  std::atomic<uint64_t> hops_{0};
  std::atomic<uint64_t> rejected_{0};
};

namespace detail {

/// Pooled searcher over a dynamic index: the SearchScratch (visited
/// epochs, candidate buffer, prepared query) survives across queries.
template <typename Storage>
class DynamicPooledSearcher : public Searcher {
 public:
  explicit DynamicPooledSearcher(const DynamicGraphIndex<Storage>* index)
      : index_(index) {}

  void Search(const float* query, size_t k, const SearchOptions& params,
              uint32_t* ids, float* dists, BatchStats* stats) override {
    if (params.filter != nullptr) {
      if (!SearchFiltered(query, k, params)) {
        // Fail closed (all-padded): a filtered query against an index
        // without usable metadata must not return unfiltered neighbors.
        // ValidateFor rejects this configuration at the boundaries.
        res_.ids.clear();
        res_.dists.clear();
        res_.distance_computations = 0;
        res_.hops = 0;
      }
    } else {
      index_->Search(query, k, params.window, &res_, &scratch_, params.rerank,
                     params.rerank_window);
    }
    WritePaddedRow(res_.ids.data(), res_.dists.data(), res_.ids.size(), k,
                   ids, dists);
    if (stats != nullptr) {
      stats->distance_computations += res_.distance_computations;
      stats->hops += res_.hops;
    }
  }

 private:
  bool SearchFiltered(const float* query, size_t k,
                      const SearchOptions& params) {
    const MetadataStore* md = index_->metadata();
    if (md == nullptr ||
        !params.filter->ValidateFor(md->num_columns()).ok()) {
      return false;
    }
    // Strategy + widen cap resolve per call against the *live* store; the
    // selectivity estimate is cached keyed on the exact filter config so
    // steady-state serving traffic does not re-sample per query. Metadata
    // churn can shift true selectivity away from a cached estimate — the
    // cost is a suboptimal strategy pick, never a wrong result — so the
    // cache also expires with the index size.
    const uint32_t window =
        std::max<uint32_t>(params.window, static_cast<uint32_t>(k));
    const size_t live = index_->live_size();
    if (!(plan_valid_ && plan_filter_ == params.filter &&
          plan_strategy_req_ == params.filter_strategy &&
          plan_live_ == live)) {
      plan_selectivity_ = EstimateSelectivity(*md, *params.filter);
      plan_push_down_ =
          (params.filter_strategy == FilterStrategy::kAuto
               ? (plan_selectivity_ <= kInSearchSelectivityCrossover
                      ? FilterStrategy::kInSearch
                      : FilterStrategy::kPostFilter)
               : params.filter_strategy) == FilterStrategy::kInSearch;
      plan_filter_ = params.filter;
      plan_strategy_req_ = params.filter_strategy;
      plan_live_ = live;
      plan_valid_ = true;
    }
    const FilterView view{md, params.filter.get()};
    const uint32_t cap =
        ResolveWidenCap(params.filter_widen_cap, live, window);
    // In-search starts from the selectivity-boosted window (see
    // ResolveInSearchWindow); post-filtering widens from the caller's.
    const uint32_t window0 =
        plan_push_down_ ? ResolveInSearchWindow(plan_selectivity_, k, window,
                                                cap)
                        : window;
    index_->Search(query, k, window0, &res_, &scratch_, params.rerank,
                   params.rerank_window, &view, plan_push_down_, cap);
    return true;
  }

  const DynamicGraphIndex<Storage>* index_;
  typename DynamicGraphIndex<Storage>::SearchScratch scratch_;
  SearchResult res_;
  // Cached filter plan (see SearchFiltered).
  bool plan_valid_ = false;
  bool plan_push_down_ = false;
  double plan_selectivity_ = 1.0;
  std::shared_ptr<const Predicate> plan_filter_;
  FilterStrategy plan_strategy_req_ = FilterStrategy::kAuto;
  size_t plan_live_ = 0;
};

}  // namespace detail

/// SearchIndex facade over a DynamicGraphIndex of any storage, so the
/// engine (and the eval harness) can serve a mutating index — float32 or
/// compressed LVQ — through the same seam. SearchOptions::window maps to
/// the dynamic search window and SearchOptions::rerank to the two-level
/// re-ranking pass; per-thread SearchScratch is pooled through
/// MakeSearcher(). Reads are safe concurrently with writers — see
/// graph/dynamic.h.
template <typename Storage>
class DynamicView : public SearchIndex {
 public:
  using Index = DynamicGraphIndex<Storage>;

  /// Non-owning; `index` must outlive the view.
  explicit DynamicView(const Index* index) : index_(index) {}

  std::string name() const override {
    return std::string("dynamic-") + index_->storage().encoding_name();
  }
  size_t size() const override { return index_->live_size(); }
  size_t dim() const override { return index_->dim(); }
  size_t memory_bytes() const override { return index_->memory_bytes(); }

  void SearchBatch(MatrixViewF queries, size_t k, const SearchOptions& params,
                   uint32_t* ids, ThreadPool* pool = nullptr) const override {
    SearchBatchEx(queries, k, params, ids, nullptr, nullptr, pool);
  }

  void SearchBatchEx(MatrixViewF queries, size_t k, const SearchOptions& params,
                     uint32_t* ids, float* dists, BatchStats* stats,
                     ThreadPool* pool = nullptr) const override {
    RunBatchSlices(
        queries.rows, pool != nullptr ? pool->num_threads() : 1, pool, stats,
        [&](size_t, size_t lo, size_t hi, BatchStats* slice_stats) {
          detail::DynamicPooledSearcher<Storage> searcher(index_);
          for (size_t qi = lo; qi < hi; ++qi) {
            searcher.Search(queries.row(qi), k, params, ids + qi * k,
                            dists != nullptr ? dists + qi * k : nullptr,
                            slice_stats);
          }
        });
  }

  std::unique_ptr<Searcher> MakeSearcher() const override {
    return std::make_unique<detail::DynamicPooledSearcher<Storage>>(index_);
  }

 private:
  const Index* index_;
};

/// The float32 view (the pre-D9 DynamicIndexView).
using DynamicIndexView = DynamicView<DynamicFloatStorage>;
/// View over the compressed dynamic index.
using DynamicLvqIndexView = DynamicView<DynamicLvqStorage>;

}  // namespace blink
