#include "serve/generation.h"

#include <utility>

namespace blink {

Result<std::shared_ptr<ServingGeneration>> GenerationHolder::MakeGeneration(
    Index index, const ServingOptions& serve_options, uint64_t number,
    std::string source) {
  if (!index) {
    return Status::InvalidArgument("generation index handle is empty");
  }
  if (!index.has(kCapSearch)) {
    return Status::InvalidArgument("generation index cannot search");
  }
  auto gen = std::make_shared<ServingGeneration>();
  gen->number = number;
  gen->source = std::move(source);
  gen->index = std::move(index);
  // Serve() after the handle reached its final address: the engine keeps a
  // pointer into it.
  Result<std::unique_ptr<ServingEngine>> engine =
      gen->index.Serve(serve_options);
  if (!engine.ok()) return engine.status();
  gen->engine = std::move(engine).value();
  return gen;
}

Result<std::unique_ptr<GenerationHolder>> GenerationHolder::Create(
    Index index, const ServingOptions& serve_options, std::string source) {
  Result<std::shared_ptr<ServingGeneration>> first =
      MakeGeneration(std::move(index), serve_options, /*number=*/1,
                     std::move(source));
  if (!first.ok()) return first.status();
  return std::unique_ptr<GenerationHolder>(
      new GenerationHolder(std::move(first).value(), serve_options));
}

std::shared_ptr<ServingGeneration> GenerationHolder::Current() const {
  std::lock_guard<std::mutex> lk(mu_);
  return current_;
}

uint64_t GenerationHolder::generation() const {
  std::lock_guard<std::mutex> lk(mu_);
  return current_->number;
}

Result<uint64_t> GenerationHolder::SwapTo(Index next, std::string source) {
  // One swap at a time; engine spin-up and the drain happen outside mu_ so
  // Current() callers are never blocked behind them.
  std::lock_guard<std::mutex> swap_lk(swap_mu_);

  const size_t current_dim = Current()->index.dim();
  if (!next) {
    return Status::InvalidArgument("hot-swap: replacement handle is empty");
  }
  if (next.dim() != current_dim) {
    return Status::InvalidArgument(
        "hot-swap: replacement dimensionality (" + std::to_string(next.dim()) +
        ") != serving dimensionality (" + std::to_string(current_dim) +
        "); in-flight queries are sized for the latter");
  }

  const uint64_t number = Current()->number + 1;
  Result<std::shared_ptr<ServingGeneration>> made =
      MakeGeneration(std::move(next), serve_options_, number,
                     std::move(source));
  if (!made.ok()) return made.status();

  std::shared_ptr<ServingGeneration> old;
  {
    std::lock_guard<std::mutex> lk(mu_);
    old = std::move(current_);
    current_ = std::move(made).value();
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);

  // Drain the retired engine's async queue, then release our reference.
  // Requests that grabbed the old generation before the swap still hold
  // theirs; the generation (engine first, then index) is destroyed when
  // the last one finishes — no in-flight query ever touches a freed index.
  old->engine->Drain();
  old.reset();
  return number;
}

Result<uint64_t> GenerationHolder::SwapFromArtifact(
    const std::string& path, const OpenOptions& open_options) {
  Result<Index> next = Open(path, open_options);
  if (!next.ok()) return next.status();
  return SwapTo(std::move(next).value(), path);
}

}  // namespace blink
