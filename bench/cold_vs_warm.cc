// cold_vs_warm — out-of-core serving (DESIGN.md D12): heap Open vs
// mmap Open of the same static LVQ bundle, cold and warm.
//
// Three claims, three measurements:
//   1. A warm mmap reopen beats a heap Open by >= 10x: kMap validates the
//      headers and points into the page cache instead of copying every
//      row onto the heap.
//   2. Recall is identical (the mapped payload is bit-exact), so the
//      |delta| <= 0.01 acceptance gate holds trivially.
//   3. Map-mode serving grows resident memory by far less than the
//      artifact size — the kernel pages vectors in on demand, which is
//      what keeps datasets larger than RAM servable.
// "Cold" rows drop the artifact's cached pages first via DropFileCache
// (posix_fadvise DONTNEED; best-effort without root, see util/mmap_file.h)
// so the first mapped batch actually faults from disk.
//
// Scales with BLINK_SCALE like every bench.
#include "common.h"

#include <cstdlib>
#include <filesystem>

#include "util/mmap_file.h"

namespace blinkbench {
namespace {

constexpr size_t kK = 10;
constexpr uint32_t kWindow = 64;

Index MustOpen(const std::string& prefix, LoadMode mode, double* seconds) {
  OpenOptions opt;
  opt.load_mode = mode;
  Timer t;
  Result<Index> idx = Open(prefix, opt);
  if (seconds != nullptr) *seconds = t.Seconds();
  if (!idx.ok()) {
    std::fprintf(stderr, "Open(%s, %s) failed: %s\n", prefix.c_str(),
                 LoadModeName(mode), idx.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(idx).value();
}

/// Best-of-3 Open wall-clock; the returned handle is the last rep's.
Index BestOpen(const std::string& prefix, LoadMode mode, double* best) {
  *best = 1e30;
  Index idx;
  for (int rep = 0; rep < 3; ++rep) {
    double secs = 0.0;
    idx = MustOpen(prefix, mode, &secs);
    *best = std::min(*best, secs);
  }
  return idx;
}

double BatchMillis(const Index& idx, MatrixViewF queries, ThreadPool* pool,
                   Matrix<uint32_t>* ids) {
  SearchOptions params;
  params.window = kWindow;
  Timer t;
  idx.SearchBatch(queries, kK, params, ids->data(), pool);
  return t.Millis();
}

size_t FileBytes(const std::string& path) {
  std::error_code ec;
  const auto sz = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<size_t>(sz);
}

void Run() {
  Banner("cold_vs_warm",
         "out-of-core serving: heap Open vs mmap Open, cold + warm");
  const size_t n = ScaledN(200000, 16000);
  const size_t nq = ScaledN(500, 100);
  ThreadPool pool(NumThreads());
  Dataset data = MakeDeepLike(n, nq, /*seed=*/1234);
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, kK, data.metric, &pool);

  IndexSpec spec;
  spec.kind = IndexKind::kStaticLvq;
  spec.metric = data.metric;
  spec.bits1 = 4;
  spec.bits2 = 8;
  spec.graph = GraphParams(32, data.metric);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "blink_cold_vs_warm").string();
  std::filesystem::create_directories(dir);
  const std::string prefix = dir + "/idx";

  Timer build_t;
  Result<Index> built = Build(spec, data.base, &pool);
  if (!built.ok()) {
    std::fprintf(stderr, "Build failed: %s\n",
                 built.status().ToString().c_str());
    std::exit(1);
  }
  const double build_s = build_t.Seconds();
  Status saved = built.value().Save(prefix);
  if (!saved.ok()) {
    std::fprintf(stderr, "Save failed: %s\n", saved.ToString().c_str());
    std::exit(1);
  }
  const size_t artifact_bytes =
      FileBytes(prefix + ".graph") + FileBytes(prefix + ".vecs");
  std::printf("n=%zu d=%zu nq=%zu  build=%.1fs  artifact=%.1f MiB "
              "(graph+vecs)\n\n",
              n, data.base.cols(), nq, build_s, Mib(artifact_bytes));
  built = Index();  // drop the builder's heap copy before measuring

  // --- heap Open (the pre-v3 behavior): copies the whole artifact -------
  const size_t rss_before_load = CurrentRssBytes();
  double load_open_s = 0.0;
  Index loaded = BestOpen(prefix, LoadMode::kLoad, &load_open_s);
  const size_t rss_load = CurrentRssBytes() - rss_before_load;
  Matrix<uint32_t> ids_load(nq, kK);
  BatchMillis(loaded, data.queries, &pool, &ids_load);  // warm-up
  const double load_batch_ms = BatchMillis(loaded, data.queries, &pool, &ids_load);
  const double recall_load = MeanRecallAtK(ids_load, gt, kK);
  loaded = Index();  // release the heap copy

  // --- mmap Open, warm page cache ---------------------------------------
  double map_warm_open_s = 0.0;
  Index mapped = BestOpen(prefix, LoadMode::kMap, &map_warm_open_s);
  if (mapped.spec().load_mode != LoadMode::kMap) {
    std::fprintf(stderr, "expected kMap to take effect on a v3 bundle\n");
    std::exit(1);
  }
  mapped = Index();

  // --- mmap Open, cold: drop the page cache, then fault on demand -------
  for (const char* ext : {".graph", ".vecs"}) {
    Status s = DropFileCache(prefix + ext);
    if (!s.ok()) std::printf("note: %s\n", s.ToString().c_str());
  }
  const size_t rss_before_map = CurrentRssBytes();
  double map_cold_open_s = 0.0;
  mapped = MustOpen(prefix, LoadMode::kMap, &map_cold_open_s);
  Matrix<uint32_t> ids_map(nq, kK);
  const double cold_batch_ms = BatchMillis(mapped, data.queries, &pool, &ids_map);
  const double warm_batch_ms = BatchMillis(mapped, data.queries, &pool, &ids_map);
  const size_t rss_map = CurrentRssBytes() - rss_before_map;
  const double recall_map = MeanRecallAtK(ids_map, gt, kK);

  std::printf("%-14s %-12s %-12s %-10s %-10s\n", "mode", "open_ms",
              "batch_ms", "recall", "rss_MiB");
  std::printf("%-14s %-12.2f %-12.2f %-10.4f %-10.1f\n", "load(heap)",
              load_open_s * 1e3, load_batch_ms, recall_load, Mib(rss_load));
  std::printf("%-14s %-12.2f %-12.2f %-10.4f %-10s\n", "map(warm)",
              map_warm_open_s * 1e3, warm_batch_ms, recall_map, "-");
  std::printf("%-14s %-12.2f %-12.2f %-10.4f %-10.1f\n", "map(cold)",
              map_cold_open_s * 1e3, cold_batch_ms, recall_map, Mib(rss_map));
  std::printf("\n");
  std::printf("warm map reopen speedup vs heap Open: %.1fx (target >= 10x)\n",
              map_warm_open_s > 0.0 ? load_open_s / map_warm_open_s : 0.0);
  std::printf("recall delta map-load: %+.4f (target |delta| <= 0.01)\n",
              recall_map - recall_load);
  std::printf("map-mode resident growth: %.1f MiB for a %.1f MiB artifact "
              "(heap load: %.1f MiB)\n",
              Mib(rss_map), Mib(artifact_bytes), Mib(rss_load));

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace blinkbench

int main() {
  blinkbench::Run();
  return 0;
}
