// Figure 15 (Appendix A.1): robustness to pathological per-dimension
// variances — deep-96 and gist-960 with 20% of dimensions scaled by
// 10-100x, plus the random-96 dataset whose dimensions have bimodal
// stddevs. OG-LVQ should remain competitive with the full-precision
// baselines despite the skewed quantization ranges.
#include "common.h"

using namespace blinkbench;

namespace {

void RunDataset(Dataset data, const char* label) {
  const size_t k = 10;
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, k, data.metric);
  std::printf("### %s ###\n\n", label);
  HarnessOptions opts;
  opts.best_of = 3;
  const auto sweep = DefaultWindowSweep();
  {
    auto idx = BuildOgLvq(data.base, data.metric, 8, 0,
                          GraphParams(32, data.metric));
    PrintCurve(idx->name(), RunSweep(*idx, data.queries, gt, sweep, opts));
  }
  {
    auto idx = BuildOgLvq(data.base, data.metric, 4, 8,
                          GraphParams(32, data.metric));
    PrintCurve(idx->name(), RunSweep(*idx, data.queries, gt, sweep, opts));
  }
  {
    auto idx = BuildVamanaF32(data.base, data.metric, GraphParams(32, data.metric));
    PrintCurve(idx->name(), RunSweep(*idx, data.queries, gt, sweep, opts));
  }
}

}  // namespace

int main() {
  Banner("Figure 15", "robustness to pathological per-dimension variances");
  {
    Dataset data = MakeDeepLike(ScaledN(10000), 200, 61);
    ModifyDatasetVariance(&data.base, &data.queries, 0.2, 10.0, 100.0, 5);
    data.metric = Metric::kL2;  // scaling destroys unit norms (as in paper)
    RunDataset(std::move(data), "deep-96-modified (20% dims x10-100)");
  }
  {
    Dataset data = MakeGistLike(ScaledN(3000), 100, 62);
    ModifyDatasetVariance(&data.base, &data.queries, 0.2, 10.0, 100.0, 6);
    RunDataset(std::move(data), "gist-960-modified (20% dims x10-100)");
  }
  RunDataset(MakeRandomVarVar(ScaledN(10000), 200, 96, 63),
             "random-96 (bimodal per-dim stddevs)");
  std::printf("Paper: OG-LVQ outperforms or matches the alternatives on all\n"
              "three pathological datasets — the large-variance dimensions\n"
              "dominate both the quantization range AND the distances, so\n"
              "the extra error on small dimensions does not hurt recall.\n");
  return 0;
}
