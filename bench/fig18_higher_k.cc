// Figures 18 / 19 (supplementary): the small-scale comparison repeated at
// 50-recall@50 and 100-recall@100 for the gist-960 and deep-96 panels —
// the paper's check that the Table 3 conclusions are not k=10 artifacts.
#include "common.h"

using namespace blinkbench;

namespace {

void RunPanel(Dataset data, size_t k) {
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, k, data.metric);
  std::printf("### %s, %zu-recall@%zu ###\n\n", data.name.c_str(), k, k);
  HarnessOptions opts;
  opts.k = k;
  opts.best_of = 3;
  // Windows must exceed k for the larger recall depths.
  const auto sweep =
      WindowSweep({static_cast<uint32_t>(k), static_cast<uint32_t>(k + k / 2),
                   static_cast<uint32_t>(2 * k), static_cast<uint32_t>(3 * k),
                   static_cast<uint32_t>(5 * k), static_cast<uint32_t>(8 * k)});
  {
    auto idx = BuildOgLvq(data.base, data.metric, 8, 0,
                          GraphParams(32, data.metric));
    PrintCurve(idx->name(), RunSweep(*idx, data.queries, gt, sweep, opts));
  }
  {
    auto idx = BuildVamanaF32(data.base, data.metric, GraphParams(32, data.metric));
    PrintCurve(idx->name(), RunSweep(*idx, data.queries, gt, sweep, opts));
  }
  {
    HnswParams hp;
    hp.M = 16;
    hp.ef_construction = 120;
    HnswIndex idx(data.base, data.metric, hp);
    PrintCurve(idx.name(), RunSweep(idx, data.queries, gt, sweep, opts));
  }
}

}  // namespace

int main() {
  Banner("Figures 18 / 19", "higher recall depths: k = 50 and k = 100");
  RunPanel(MakeDeepLike(ScaledN(8000), 200), 50);
  RunPanel(MakeGistLike(ScaledN(3000), 100), 50);
  RunPanel(MakeDeepLike(ScaledN(8000), 200, 43), 100);
  RunPanel(MakeGistLike(ScaledN(3000), 100, 44), 100);
  std::printf("Paper: results are consistent with the 10-recall@10 study.\n");
  return 0;
}
