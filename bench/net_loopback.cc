// net_loopback — end-to-end serving bench over the network front end
// (ISSUE 8): an in-process blink server on a loopback socket, hammered by
// closed-loop client threads while the index is hot-swapped repeatedly.
//
// Asserts (non-zero exit on violation):
//   - >= 3 consecutive hot-swaps complete with ZERO dropped or erroneous
//     in-flight responses, and per-connection generations never go back.
//   - recall stays flat across generations (the swap never serves a
//     half-initialized index).
//   - /stats telemetry matches the client-side loadgen: QPS within 10%
//     (delta between two scrapes vs the clients' own counters), p50/p99
//     consistent with the client-observed latencies.
//
// Scales with BLINK_SCALE like every bench.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <thread>

#include "common.h"

namespace blinkbench {
namespace {

constexpr size_t kK = 10;
constexpr size_t kClients = 4;
constexpr size_t kBatch = 8;
constexpr int kSwaps = 4;  // acceptance floor is 3 consecutive swaps

int g_failures = 0;

#define BENCH_CHECK(cond, ...)                       \
  do {                                               \
    if (!(cond)) {                                   \
      ++g_failures;                                  \
      std::printf("FAIL: " __VA_ARGS__);             \
      std::printf("  [%s]\n", #cond);                \
    }                                                \
  } while (0)

double ClientPercentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  const size_t i = static_cast<size_t>(p / 100.0 * (v->size() - 1) + 0.5);
  return (*v)[std::min(i, v->size() - 1)];
}

double StatsNumber(const json::Value& doc, const char* key) {
  const json::Value* v = doc.Find(key);
  return v == nullptr ? -1.0 : v->as_number();
}

struct GenRecall {
  double hit_sum = 0.0;
  uint64_t queries = 0;
};

Index BuildServedIndex(const Dataset& data, int bits2, ThreadPool* pool) {
  IndexSpec spec;
  spec.kind = IndexKind::kStaticLvq;
  spec.metric = data.metric;
  spec.bits1 = 8;
  spec.bits2 = bits2;
  spec.graph = GraphParams(32, data.metric);
  Result<Index> built = Build(spec, data.base, pool);
  if (!built.ok()) {
    std::printf("FAIL: build: %s\n", built.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(built).value();
}

void Run() {
  const size_t n = ScaledN(40000, 5000);
  const size_t nq = ScaledN(1000, 200);
  ThreadPool pool(NumThreads());
  Dataset data = MakeDeepLike(n, nq, /*seed=*/77);
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, kK, data.metric, &pool);

  // Two swap artifacts: A is the same flavor the server starts with, B adds
  // an 8-bit residual level — recall must stay flat across all of them.
  const std::filesystem::path tmp = std::filesystem::temp_directory_path();
  const std::string path_a = (tmp / "blink_net_loopback_a").string();
  const std::string path_b = (tmp / "blink_net_loopback_b").string();
  Index index_a = BuildServedIndex(data, /*bits2=*/0, &pool);
  if (!index_a.Save(path_a).ok() ||
      !BuildServedIndex(data, /*bits2=*/8, &pool).Save(path_b).ok()) {
    std::printf("FAIL: cannot save swap artifacts under %s\n",
                tmp.string().c_str());
    std::exit(1);
  }
  std::printf("corpus n=%zu nq=%zu, artifacts: %s, %s\n\n", n, nq,
              path_a.c_str(), path_b.c_str());

  net::ServerOptions sopts;
  sopts.port = 0;  // ephemeral
  auto started = net::BlinkServer::Start(std::move(index_a), sopts);
  if (!started.ok()) {
    std::printf("FAIL: %s\n", started.status().ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<net::BlinkServer> server = std::move(started).value();
  const uint16_t port = server->port();

  SearchOptions search_opts;
  search_opts.window = 64;

  std::atomic<bool> stop{false};
  std::atomic<bool> measuring{false};
  std::atomic<uint64_t> client_requests{0};   // kOk responses, all phases
  std::atomic<uint64_t> transport_errors{0};
  std::atomic<uint64_t> wrong_status{0};
  std::atomic<uint64_t> generation_regressions{0};
  std::mutex merge_mu;
  std::vector<double> all_lat_us;              // measured phase only
  std::map<uint64_t, GenRecall> by_generation;

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto conn = net::BlinkClient::Connect("127.0.0.1", port);
      if (!conn.ok()) {
        transport_errors.fetch_add(1);
        return;
      }
      net::BlinkClient client = std::move(conn).value();
      std::vector<double> lat_us;
      std::map<uint64_t, GenRecall> recalls;
      uint64_t last_generation = 0;
      for (uint64_t iter = c * 131; !stop.load(std::memory_order_relaxed);
           ++iter) {
        const size_t lo = (iter * kBatch) % (nq - kBatch + 1);
        MatrixViewF slice(data.queries.row(lo), kBatch, data.queries.cols());
        net::SearchResponse res;
        Timer t;
        Status s = client.Search(slice, kK, search_opts, &res);
        const double us = t.Micros();
        if (!s.ok()) {
          // Only the shutdown race at the end of the run is benign.
          if (!stop.load(std::memory_order_relaxed)) {
            transport_errors.fetch_add(1);
          }
          break;
        }
        if (res.status != net::WireStatus::kOk || res.num_queries != kBatch) {
          wrong_status.fetch_add(1);
          continue;
        }
        if (res.generation < last_generation) generation_regressions.fetch_add(1);
        last_generation = res.generation;
        client_requests.fetch_add(1);
        if (!measuring.load(std::memory_order_relaxed)) continue;
        lat_us.push_back(us);
        GenRecall& gr = recalls[res.generation];
        for (size_t q = 0; q < kBatch; ++q) {
          gr.hit_sum += RecallAtK({res.ids.data() + q * kK, kK},
                                  {gt.row(lo + q), kK}, kK);
          ++gr.queries;
        }
      }
      std::lock_guard<std::mutex> lk(merge_mu);
      all_lat_us.insert(all_lat_us.end(), lat_us.begin(), lat_us.end());
      for (const auto& [gen, gr] : recalls) {
        by_generation[gen].hit_sum += gr.hit_sum;
        by_generation[gen].queries += gr.queries;
      }
    });
  }

  auto scrape = [&](const char* what) {
    auto conn = net::BlinkClient::Connect("127.0.0.1", port);
    net::StatusTextResponse res;
    if (!conn.ok() || !conn.value().Stats(&res).ok() ||
        res.status != net::WireStatus::kOk) {
      std::printf("FAIL: /stats scrape (%s) failed\n", what);
      std::exit(1);
    }
    Result<json::Value> doc = json::Parse(res.text);
    if (!doc.ok()) {
      std::printf("FAIL: /stats is not valid JSON: %s\n", res.text.c_str());
      std::exit(1);
    }
    return std::move(doc).value();
  };

  // Warmup, then bracket the measured window with two /stats scrapes; the
  // hot-swaps all land inside the window, under full load.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const json::Value stats0 = scrape("t0");
  const uint64_t client0 = client_requests.load();
  Timer window;
  measuring.store(true);

  auto swapper = net::BlinkClient::Connect("127.0.0.1", port);
  BENCH_CHECK(swapper.ok(), "swap connection\n");
  for (int s = 0; s < kSwaps; ++s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    net::StatusTextResponse res;
    Status st = swapper.value().Swap(s % 2 == 0 ? path_b : path_a, &res);
    BENCH_CHECK(st.ok() && res.status == net::WireStatus::kOk,
                "swap %d rejected: %s\n", s, res.text.c_str());
    BENCH_CHECK(res.generation == static_cast<uint64_t>(s) + 2,
                "swap %d: generation %llu, want %d\n", s,
                static_cast<unsigned long long>(res.generation), s + 2);
    std::printf("swap %d -> generation %llu (%s)\n", s + 1,
                static_cast<unsigned long long>(res.generation),
                s % 2 == 0 ? "lvq8x8" : "lvq8");
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(250));

  measuring.store(false);
  const double elapsed = window.Seconds();
  const json::Value stats1 = scrape("t1");
  const uint64_t client1 = client_requests.load();
  stop.store(true);
  for (auto& t : clients) t.join();
  server->Stop();

  // --- zero-loss hot-swap ---------------------------------------------------
  std::printf("\nload: %llu ok responses, %llu transport errors, %llu wrong "
              "status, %llu generation regressions\n",
              static_cast<unsigned long long>(client_requests.load()),
              static_cast<unsigned long long>(transport_errors.load()),
              static_cast<unsigned long long>(wrong_status.load()),
              static_cast<unsigned long long>(generation_regressions.load()));
  BENCH_CHECK(transport_errors.load() == 0, "dropped responses\n");
  BENCH_CHECK(wrong_status.load() == 0, "erroneous responses\n");
  BENCH_CHECK(generation_regressions.load() == 0, "generation went back\n");
  BENCH_CHECK(StatsNumber(stats1, "swaps") == kSwaps, "stats swaps=%f\n",
              StatsNumber(stats1, "swaps"));
  BENCH_CHECK(StatsNumber(stats1, "generation") == kSwaps + 1,
              "stats generation=%f\n", StatsNumber(stats1, "generation"));

  // --- recall flat across generations --------------------------------------
  double rmin = 1.0, rmax = 0.0;
  for (const auto& [gen, gr] : by_generation) {
    const double recall = gr.queries ? gr.hit_sum / gr.queries : 0.0;
    std::printf("generation %llu: recall@%zu %.3f over %llu queries\n",
                static_cast<unsigned long long>(gen), kK, recall,
                static_cast<unsigned long long>(gr.queries));
    if (gr.queries < 50) continue;  // too few samples to judge a boundary gen
    rmin = std::min(rmin, recall);
    rmax = std::max(rmax, recall);
  }
  BENCH_CHECK(by_generation.size() >= 2, "load never spanned a swap\n");
  BENCH_CHECK(rmin >= 0.70, "recall floor: min %.3f\n", rmin);
  BENCH_CHECK(rmax - rmin <= 0.05, "recall not flat: %.3f..%.3f\n", rmin, rmax);

  // --- /stats vs loadgen ----------------------------------------------------
  const double server_qps =
      (StatsNumber(stats1, "completed_queries") -
       StatsNumber(stats0, "completed_queries")) / elapsed;
  const double client_qps =
      static_cast<double>((client1 - client0) * kBatch) / elapsed;
  const double server_p50 = StatsNumber(stats1, "p50_us");
  const double server_p99 = StatsNumber(stats1, "p99_us");
  const double client_p50 = ClientPercentile(&all_lat_us, 50.0);
  const double client_p99 = ClientPercentile(&all_lat_us, 99.0);
  std::printf("\n%-10s %12s %12s\n", "", "server", "loadgen");
  std::printf("%-10s %12.0f %12.0f\n", "qps", server_qps, client_qps);
  std::printf("%-10s %12.0f %12.0f\n", "p50_us", server_p50, client_p50);
  std::printf("%-10s %12.0f %12.0f\n", "p99_us", server_p99, client_p99);
  BENCH_CHECK(client_qps > 0, "loadgen made no progress\n");
  BENCH_CHECK(std::abs(server_qps - client_qps) <= 0.10 * client_qps + 32.0,
              "QPS mismatch: server %.0f vs loadgen %.0f\n", server_qps,
              client_qps);
  // Server-side latency excludes the loopback RTT and framing, so it must
  // sit at or below the client's, but within the same regime.
  BENCH_CHECK(server_p50 <= client_p50 * 1.25 + 150.0,
              "p50: server %.0fus vs loadgen %.0fus\n", server_p50, client_p50);
  BENCH_CHECK(server_p50 >= client_p50 * 0.20 - 150.0,
              "p50: server %.0fus vs loadgen %.0fus\n", server_p50, client_p50);
  BENCH_CHECK(server_p99 <= client_p99 * 1.25 + 300.0,
              "p99: server %.0fus vs loadgen %.0fus\n", server_p99, client_p99);

  for (const std::string& base : {path_a, path_b}) {
    for (const char* suffix : {"", ".graph", ".vecs"}) {
      std::error_code ec;
      std::filesystem::remove(base + suffix, ec);
    }
  }
}

}  // namespace
}  // namespace blinkbench

int main() {
  blinkbench::Banner("net_loopback",
                     "loopback serving: hot-swap under load, /stats vs loadgen");
  blinkbench::Run();
  if (blinkbench::g_failures > 0) {
    std::printf("\nnet_loopback: %d FAILURES\n", blinkbench::g_failures);
    return 1;
  }
  std::printf("\nnet_loopback: PASS\n");
  return 0;
}
