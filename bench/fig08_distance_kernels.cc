// Figure 8: mean similarity-computation time per vector for float16,
// LVQ-8 and LVQ-4 encodings, as a function of how many vectors are scanned
// (the curve's inflection marks the L2-cache boundary), for d = 128 and
// d = 768. Also covers the static- vs dynamic-dimensionality ablation
// (paper: up to 32% from static dims).
//
// google-benchmark binary: rows print as
//   BM_Scan<enc>/d/n  ...  ns_per_distance
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "blink.h"

namespace {

using namespace blink;

/// Sequential-scan fixture: one contiguous buffer of n encoded vectors.
struct ScanData {
  MatrixF raw;
  std::vector<Float16> f16;
  LvqDataset lvq8;
  LvqDataset lvq4;
  std::vector<float> query;

  ScanData(size_t n, size_t d) : raw(n, d), query(d) {
    Rng rng(n * 31 + d);
    for (size_t i = 0; i < raw.size(); ++i) raw.data()[i] = rng.Gaussian();
    for (auto& q : query) q = rng.Gaussian();
    f16.resize(n * d);
    for (size_t i = 0; i < n * d; ++i) f16[i] = Float16(raw.data()[i]);
    LvqDataset::Options o8, o4;
    o8.bits = 8;
    o4.bits = 4;
    lvq8 = LvqDataset::Encode(raw, o8);
    lvq4 = LvqDataset::Encode(raw, o4);
  }
};

ScanData& Cached(size_t n, size_t d) {
  static std::map<std::pair<size_t, size_t>, std::unique_ptr<ScanData>> cache;
  auto& slot = cache[{n, d}];
  if (!slot) slot = std::make_unique<ScanData>(n, d);
  return *slot;
}

void BM_ScanF16(benchmark::State& state) {
  const size_t d = state.range(0), n = state.range(1);
  ScanData& sd = Cached(n, d);
  auto fn = simd::GetL2F16(d);
  float acc = 0.0f;
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      acc += fn(sd.query.data(), sd.f16.data() + i * d, d);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.counters["ns_per_dist"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_ScanLvq8(benchmark::State& state) {
  const size_t d = state.range(0), n = state.range(1);
  ScanData& sd = Cached(n, d);
  auto fn = simd::GetL2U8(d);
  float acc = 0.0f;
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      const LvqConstants c = sd.lvq8.constants(i);
      acc += fn(sd.query.data(), sd.lvq8.codes(i), c.delta, c.lower, d);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.counters["ns_per_dist"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_ScanLvq4(benchmark::State& state) {
  const size_t d = state.range(0), n = state.range(1);
  ScanData& sd = Cached(n, d);
  auto fn = simd::GetL2U4(d);
  float acc = 0.0f;
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      const LvqConstants c = sd.lvq4.constants(i);
      acc += fn(sd.query.data(), sd.lvq4.codes(i), c.delta, c.lower, d);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.counters["ns_per_dist"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_ScanF32StaticDim(benchmark::State& state) {
  const size_t d = state.range(0), n = state.range(1);
  ScanData& sd = Cached(n, d);
  auto fn = simd::GetL2F32(d);  // static specialization when available
  float acc = 0.0f;
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) acc += fn(sd.query.data(), sd.raw.row(i), d);
    benchmark::DoNotOptimize(acc);
  }
  state.counters["ns_per_dist"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_ScanF32DynamicDim(benchmark::State& state) {
  const size_t d = state.range(0), n = state.range(1);
  ScanData& sd = Cached(n, d);
  auto fn = simd::GetL2F32Dynamic();
  float acc = 0.0f;
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) acc += fn(sd.query.data(), sd.raw.row(i), d);
    benchmark::DoNotOptimize(acc);
  }
  state.counters["ns_per_dist"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_ScanLvq8Unfused(benchmark::State& state) {
  // Fusion ablation (DESIGN.md D3): decompress into a scratch buffer, then
  // run the float32 kernel.
  const size_t d = state.range(0), n = state.range(1);
  ScanData& sd = Cached(n, d);
  std::vector<float> scratch(d);
  float acc = 0.0f;
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      const LvqConstants c = sd.lvq8.constants(i);
      acc += simd::L2SqrU8Unfused(sd.query.data(), sd.lvq8.codes(i), c.delta,
                                  c.lower, d, scratch.data());
    }
    benchmark::DoNotOptimize(acc);
  }
  state.counters["ns_per_dist"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void Sizes(benchmark::internal::Benchmark* b) {
  // Match the paper's ranges: n to 10^7-ish at d=128 (memory permitting)
  // and to ~10^5 at d=768. The inflection marks the cache boundary.
  for (int64_t n : {1 << 10, 1 << 13, 1 << 16, 1 << 18}) b->Args({128, n});
  for (int64_t n : {1 << 7, 1 << 10, 1 << 13, 1 << 15}) b->Args({768, n});
}

BENCHMARK(BM_ScanF16)->Apply(Sizes);
BENCHMARK(BM_ScanLvq8)->Apply(Sizes);
BENCHMARK(BM_ScanLvq4)->Apply(Sizes);
BENCHMARK(BM_ScanLvq8Unfused)->Args({128, 1 << 13})->Args({768, 1 << 13});
BENCHMARK(BM_ScanF32StaticDim)->Args({128, 1 << 13})->Args({768, 1 << 13})->Args({100, 1 << 13});
BENCHMARK(BM_ScanF32DynamicDim)->Args({128, 1 << 13})->Args({768, 1 << 13})->Args({100, 1 << 13});

}  // namespace

BENCHMARK_MAIN();
