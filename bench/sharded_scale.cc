// sharded_scale — the sharded index's two claims (ISSUE 3):
//
//   1. Build-time speedup: S independent Vamana builds of n/S points are
//      cheaper than one build of n (per-insert search cost grows with
//      graph size) and run concurrently on the pool, so S=4 build
//      wall-clock must be measurably below S=1.
//   2. QPS/recall Pareto: the partition-then-probe trade at S in {1, 4, 8}
//      swept over (window, nprobe_shards) — probing fewer shards buys QPS,
//      merged windows buy recall.
//
// Scales with BLINK_SCALE like every bench.
#include "common.h"

namespace blinkbench {
namespace {

constexpr size_t kK = 10;

void Run() {
  Banner("sharded_scale",
         "sharded build speedup + QPS/recall Pareto at S in {1,4,8}");
  const size_t n = ScaledN(100000, 8000);
  const size_t nq = ScaledN(1000, 200);
  ThreadPool pool(NumThreads());
  Dataset data = MakeDeepLike(n, nq, /*seed=*/1234);
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, kK, data.metric, &pool);
  const VamanaBuildParams bp = GraphParams(32, data.metric);

  double s1_build = 0.0;
  std::printf("%-4s %-10s %-9s %-10s\n", "S", "build_s", "speedup", "MiB");
  std::vector<std::unique_ptr<ShardedIndex>> indices;
  ShardedBuildParams sp;
  sp.graph = bp;
  sp.bits1 = 8;
  ShardedBuilder builder(sp);
  for (size_t S : {1u, 4u, 8u}) {
    builder.params().partition.num_shards = S;
    auto idx = builder.Build(data.base, data.metric, &pool);
    const double secs = idx->build_seconds();
    if (S == 1) s1_build = secs;
    std::printf("%-4zu %-10.2f %-9.2f %-10.1f\n", S, secs,
                s1_build > 0.0 ? s1_build / secs : 1.0,
                Mib(idx->memory_bytes()));
    indices.push_back(std::move(idx));
  }
  std::printf("\n");

  HarnessOptions opts;
  opts.k = kK;
  opts.best_of = 3;
  opts.pool = &pool;
  for (const auto& idx : indices) {
    const size_t S = idx->num_shards();
    std::vector<uint32_t> nprobes;
    for (uint32_t p : {1u, 2u, 4u, 8u}) {
      if (p <= S && (nprobes.empty() || nprobes.back() != p)) nprobes.push_back(p);
    }
    for (uint32_t nprobe : nprobes) {
      std::vector<RuntimeParams> settings =
          WindowSweep({10, 14, 20, 28, 40, 56, 80, 112});
      for (RuntimeParams& p : settings) p.nprobe_shards = nprobe;
      auto pts = RunSweep(*idx, data.queries, gt, settings, opts);
      char label[64];
      std::snprintf(label, sizeof(label), "S=%zu nprobe=%u", S, nprobe);
      PrintCurve(label, pts);
    }
  }
}

}  // namespace
}  // namespace blinkbench

int main() {
  blinkbench::Run();
  return 0;
}
