// Figure 11: exhaustive-search accuracy vs compression ratio for LVQ,
// global scalar quantization, PQ and OPQ (deep-96-1M stand-in).
//
// The paper's shape: below ~6x compression LVQ achieves the best recall
// (with far cheaper similarity computations); at extreme ratios PQ/OPQ win
// on raw rate-distortion but sit below the accuracy modern applications
// need, forcing re-ranking.
#include "common.h"
#include "baselines/opq.h"
#include "baselines/pq.h"

using namespace blinkbench;

namespace {

double RecallOfDecoded(const MatrixF& decoded, const Dataset& data,
                       const Matrix<uint32_t>& gt, size_t k) {
  Matrix<uint32_t> res =
      ComputeGroundTruth(decoded, data.queries, k, data.metric);
  return MeanRecallAtK(res, gt, k);
}

}  // namespace

int main() {
  Banner("Figure 11", "exhaustive-search recall vs compression ratio");
  const size_t n = ScaledN(15000), nq = 200, k = 10;
  Dataset data = MakeDeepLike(n, nq);
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, k, data.metric);

  std::printf("%-14s %-8s %-10s\n", "method", "CR", "recall@10");

  for (int bits : {1, 2, 3, 4, 5, 6, 8}) {
    LvqDataset::Options o;
    o.bits = bits;
    o.padding = 0;
    LvqDataset ds = LvqDataset::Encode(data.base, o);
    std::printf("%-14s %-8.2f %-10.4f\n",
                ("LVQ-" + std::to_string(bits)).c_str(),
                ds.compression_ratio(),
                RecallOfDecoded(DecodeAll(ds), data, gt, k));
  }
  for (int bits : {1, 2, 3, 4, 5, 6, 8}) {
    GlobalDataset::Options o;
    o.bits = bits;
    GlobalDataset ds = GlobalDataset::Encode(data.base, o);
    std::printf("%-14s %-8.2f %-10.4f\n",
                ("global-" + std::to_string(bits)).c_str(),
                ds.compression_ratio(),
                RecallOfDecoded(DecodeAll(ds), data, gt, k));
  }
  for (size_t m : {6u, 8u, 12u, 16u, 24u, 32u, 48u, 96u}) {
    PqParams p;
    p.num_segments = m;
    PqCodec c = PqCodec::Train(data.base, p);
    PqDataset ds(std::move(c), data.base);
    MatrixF dec(n, data.base.cols());
    for (size_t i = 0; i < n; ++i) ds.Decode(i, dec.row(i));
    std::printf("%-14s %-8.2f %-10.4f\n", ("PQ-M" + std::to_string(m)).c_str(),
                ds.compression_ratio(), RecallOfDecoded(dec, data, gt, k));
  }
  for (size_t m : {8u, 16u, 32u}) {
    OpqParams p;
    p.pq.num_segments = m;
    p.opt_iters = 8;
    OpqCodec c = OpqCodec::Train(data.base, p);
    OpqDataset ds(std::move(c), data.base);
    MatrixF dec(n, data.base.cols());
    for (size_t i = 0; i < n; ++i) ds.Decode(i, dec.row(i));
    std::printf("%-14s %-8.2f %-10.4f\n", ("OPQ-M" + std::to_string(m)).c_str(),
                ds.compression_ratio(), RecallOfDecoded(dec, data, gt, k));
  }
  std::printf("\nPaper: PQ/OPQ lead below their ~0.7-recall plateau at high\n"
              "CR; LVQ overtakes at CR < ~6-8x and reaches near-exact recall.\n");
  return 0;
}
