// Figure 7(c): memory-bandwidth utilization during search.
//
// The paper measures 160 GB/s (float16) and 135 GB/s (LVQ-8) against a
// 174 GB/s Intel MLC peak. Without MLC we estimate the peak with a large
// streaming read, and compute the search's achieved bandwidth from bytes
// actually fetched per query (vector blobs + adjacency rows touched,
// counted from per-query hop/distance statistics).
#include <cstring>

#include "common.h"

using namespace blinkbench;

namespace {

/// Streaming-read bandwidth estimate (GB/s) over a buffer far larger than
/// the last-level cache.
double PeakReadBandwidth() {
  const size_t bytes = 512ull << 20;
  Arena buf(bytes);
  std::memset(buf.data(), 1, bytes);
  volatile uint64_t sink = 0;
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t;
    const uint64_t* p = reinterpret_cast<const uint64_t*>(buf.data());
    uint64_t acc = 0;
    for (size_t i = 0; i < bytes / 8; i += 8) {
      acc += p[i] + p[i + 1] + p[i + 2] + p[i + 3] + p[i + 4] + p[i + 5] +
             p[i + 6] + p[i + 7];
    }
    sink = sink + acc;
    best = std::max(best, static_cast<double>(bytes) / t.Seconds() / 1e9);
  }
  return best;
}

template <typename Index>
void Measure(const Index& idx, const Dataset& data, size_t vector_bytes,
             double peak) {
  RuntimeParams p;
  p.window = 40;
  const size_t adj_bytes = (idx.graph().max_degree() + 1) * sizeof(uint32_t);
  SearchResult res;
  size_t total_fetch = 0;
  Timer t;
  for (size_t q = 0; q < data.queries.rows(); ++q) {
    idx.Search(data.queries.row(q), 10, p, &res);
    total_fetch += res.distance_computations * vector_bytes +
                   res.hops * adj_bytes;
  }
  const double secs = t.Seconds();
  const double gbps = static_cast<double>(total_fetch) / secs / 1e9;
  std::printf("%-16s fetched %.2f GB in %.2fs -> %.1f GB/s  (%.0f%% of peak)\n",
              idx.storage().encoding_name(),
              static_cast<double>(total_fetch) / 1e9, secs, gbps,
              100.0 * gbps / peak);
}

}  // namespace

int main() {
  Banner("Figure 7(c)", "achieved memory bandwidth: float16 vs LVQ-8");
  const double peak = PeakReadBandwidth();
  std::printf("streaming-read peak estimate: %.1f GB/s\n\n", peak);

  const size_t n = ScaledN(40000), nq = 2000;
  Dataset data = MakeDeepLike(n, nq);
  auto f16 = BuildVamanaF16(data.base, data.metric, GraphParams(32, data.metric));
  auto lvq = BuildOgLvq(data.base, data.metric, 8, 0, GraphParams(32, data.metric));

  Measure(*f16, data, data.base.cols() * sizeof(Float16), peak);
  Measure(*lvq, data, lvq->storage().level1().vector_footprint(), peak);

  std::printf("\nPaper: 90%% (float16) and 78%% (LVQ-8) of the MLC peak on a\n"
              "40-core socket. A single core cannot saturate a socket; the\n"
              "transferable statistic is bytes per vector fetch: float16\n"
              "moves %zu B/vector vs LVQ-8's %zu B/vector here.\n",
              data.base.cols() * sizeof(Float16),
              lvq->storage().level1().vector_footprint());
  return 0;
}
