// Figure 10 + Figure 20: large-scale QPS/recall curves for the deep-96-1B,
// t2i-200-100M and DPR-768-10M stand-ins (scaled down; BLINK_SCALE raises
// the sizes). Five methods per dataset, full-batch mode; 10-recall@10
// curves plus 50-recall@50 for the Fig. 20 check.
#include "common.h"

using namespace blinkbench;

namespace {

void RunDataset(Dataset data, size_t k) {
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, k, data.metric);
  std::printf("### %s (n=%zu, d=%zu, %s), k=%zu ###\n\n", data.name.c_str(),
              data.base.rows(), data.base.cols(), MetricName(data.metric), k);
  HarnessOptions opts;
  opts.k = k;
  opts.best_of = 3;
  const auto graph_sweep = DefaultWindowSweep();
  const auto probe_sweep =
      ProbeSweep({1, 2, 4, 8, 16, 32, 64, 128}, {0, 20, 100, 400});

  {
    const uint32_t R = 64;  // scaled stand-in for the paper's R=128
    auto idx = BuildOgLvq(data.base, data.metric, 8, 0,
                          GraphParams(R, data.metric));
    PrintCurve(idx->name(), RunSweep(*idx, data.queries, gt, graph_sweep, opts));
    auto idx2 = BuildOgLvq(data.base, data.metric, 4, 8,
                           GraphParams(R, data.metric));
    PrintCurve(idx2->name(), RunSweep(*idx2, data.queries, gt, graph_sweep, opts));
    auto vam = BuildVamanaF32(data.base, data.metric, GraphParams(R, data.metric));
    PrintCurve(vam->name(), RunSweep(*vam, data.queries, gt, graph_sweep, opts));
  }
  {
    HnswParams hp;
    hp.M = 32;
    hp.ef_construction = 120;
    HnswIndex idx(data.base, data.metric, hp);
    PrintCurve(idx.name(), RunSweep(idx, data.queries, gt, graph_sweep, opts));
  }
  {
    IvfPqParams ip;
    ip.nlist = std::max<size_t>(64, data.base.rows() / 256);
    ip.pq.num_segments = std::max<size_t>(8, data.base.cols() / 2);
    IvfPqIndex idx(data.base, data.metric, ip);
    PrintCurve(idx.name(), RunSweep(idx, data.queries, gt, probe_sweep, opts));
  }
  {
    ScannParams sp;
    ScannIndex idx(data.base, data.metric, sp);
    PrintCurve(idx.name(), RunSweep(idx, data.queries, gt, probe_sweep, opts));
  }
}

}  // namespace

int main() {
  Banner("Figure 10 / 20", "large-scale QPS/recall (scaled stand-ins)");
  RunDataset(MakeDeepLike(ScaledN(30000), 300), 10);
  RunDataset(MakeT2iLike(ScaledN(15000), 200), 10);
  RunDataset(MakeDprLike(ScaledN(8000), 200), 10);
  // Fig. 20 spot-check at k=50 for the two paper panels.
  RunDataset(MakeDeepLike(ScaledN(15000), 150, 77), 50);
  std::printf("Paper: OG-LVQ leads across the recall range on deep-96-1B\n"
              "(6.5x at 0.9); on IP datasets it leads below ~0.95-0.97 recall\n"
              "and is on par above.\n");
  return 0;
}
