// Figure 4: search performance on graphs *built* from compressed vectors.
//
// Graphs are constructed from LVQ- or globally-quantized vectors at
// B = {2, 4, 8, 32}; the search itself always runs with float32 vectors
// (as in the paper, to normalize for compute differences). Expected shape:
// LVQ-built graphs at B >= 4 match the float32-built graph; global
// quantization at 4 bits collapses.
#include "common.h"

using namespace blinkbench;

namespace {

std::vector<SweepPoint> CurveForGraph(BuiltGraph graph, const Dataset& data,
                                      const Matrix<uint32_t>& gt,
                                      const VamanaBuildParams& bp) {
  VamanaIndex<FloatStorage> idx(FloatStorage(data.base, data.metric),
                                std::move(graph), bp);
  HarnessOptions opts;
  opts.best_of = 3;
  return RunSweep(idx, data.queries, gt, DefaultWindowSweep(), opts);
}

}  // namespace

int main() {
  Banner("Figure 4", "QPS/recall of graphs built from quantized vectors");
  const size_t n = ScaledN(10000), nq = 200, k = 10;
  Dataset data = MakeDeepLike(n, nq);
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, k, data.metric);
  VamanaBuildParams bp = GraphParams(32, data.metric);

  // Reference: graph built from float32.
  {
    BuiltGraph g = BuildVamana(FloatStorage(data.base, data.metric), bp);
    PrintCurve("built from float32 (B=32)", CurveForGraph(std::move(g), data, gt, bp));
  }
  for (int bits : {8, 4, 2}) {
    BuiltGraph g = BuildVamana(LvqStorage(data.base, data.metric, bits), bp);
    PrintCurve("built from LVQ-" + std::to_string(bits),
               CurveForGraph(std::move(g), data, gt, bp));
  }
  for (int bits : {8, 4, 2}) {
    BuiltGraph g = BuildVamana(
        GlobalQuantStorage(data.base, data.metric, bits, 0), bp);
    PrintCurve("built from global-" + std::to_string(bits),
               CurveForGraph(std::move(g), data, gt, bp));
  }
  std::printf("Paper: LVQ-built graphs at B>=4 overlap the float32-built\n"
              "curve; global-4 shows a sharp throughput drop at fixed recall.\n");
  return 0;
}
