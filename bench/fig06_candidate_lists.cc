// Figure 6: candidate-list fidelity under compression — T-recall@T and
// Ranked-Bias Overlap between exhaustive-search lists computed on
// compressed vs full-precision vectors, as a function of the bit budget.
#include "common.h"

using namespace blinkbench;

namespace {

struct ListStats {
  double recall = 0.0;
  double rbo = 0.0;
};

ListStats Compare(const Matrix<uint32_t>& exact, const Matrix<uint32_t>& comp,
                  size_t T) {
  RunningStats recall, rbo;
  for (size_t q = 0; q < exact.rows(); ++q) {
    recall.Add(RecallAtK({comp.row(q), T}, {exact.row(q), T}, T));
    rbo.Add(RankBiasedOverlap({comp.row(q), T}, {exact.row(q), T}, 0.995));
  }
  return {recall.mean(), rbo.mean()};
}

}  // namespace

int main() {
  Banner("Figure 6", "T-recall@T and RBO of candidate lists vs bits (T=750)");
  const size_t n = ScaledN(10000);
  const size_t T = 750;
  const size_t nq = static_cast<size_t>(50 * std::max(1.0, BenchScale()));
  // The paper samples database vectors as queries (candidate lists feed the
  // graph builder, whose queries are the nodes themselves).
  Dataset data = MakeDeepLike(n, nq, 21);
  MatrixF queries(nq, data.base.cols());
  for (size_t q = 0; q < nq; ++q) {
    std::copy(data.base.row(q * (n / nq)),
              data.base.row(q * (n / nq)) + data.base.cols(), queries.row(q));
  }
  Matrix<uint32_t> exact =
      ComputeGroundTruth(data.base, queries, T, data.metric);

  std::printf("%-6s %-14s %-14s %-14s %-14s\n", "bits", "LVQ recall",
              "LVQ RBO", "glob recall", "glob RBO");
  for (int bits : {2, 3, 4, 6, 8, 12, 16}) {
    LvqDataset::Options lo;
    lo.bits = bits;
    lo.padding = 0;
    MatrixF lvq_dec = DecodeAll(LvqDataset::Encode(data.base, lo));
    GlobalDataset::Options go;
    go.bits = bits;
    MatrixF glob_dec = DecodeAll(GlobalDataset::Encode(data.base, go));
    Matrix<uint32_t> lvq_lists =
        ComputeGroundTruth(lvq_dec, queries, T, data.metric);
    Matrix<uint32_t> glob_lists =
        ComputeGroundTruth(glob_dec, queries, T, data.metric);
    const ListStats sl = Compare(exact, lvq_lists, T);
    const ListStats sg = Compare(exact, glob_lists, T);
    std::printf("%-6d %-14.4f %-14.4f %-14.4f %-14.4f\n", bits, sl.recall,
                sl.rbo, sg.recall, sg.rbo);
  }
  std::printf("\nPaper: LVQ stays above 0.8 recall at 4 bits while global\n"
              "quantization drops to ~0.6; RBO behaves the same way.\n");
  return 0;
}
