// Shared scaffolding for the per-figure/table benchmark harnesses.
//
// Every bench prints the rows/series of one paper table or figure. Dataset
// sizes default to values that complete on a small machine and scale with
// BLINK_SCALE (see util/env.h); EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "blink.h"

namespace blinkbench {

using namespace blink;  // NOLINT — bench binaries are applications

inline void Banner(const char* exp_id, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", exp_id, what);
  std::printf("(synthetic stand-in datasets; BLINK_SCALE=%.2f; backend=%s)\n",
              BenchScale(), simd::BackendName());
  std::printf("==============================================================\n");
}

/// The paper's standard graph build settings (Sec. 6.4) at bench scale.
inline VamanaBuildParams GraphParams(uint32_t R, Metric metric) {
  VamanaBuildParams bp;
  bp.graph_max_degree = R;
  bp.window_size = std::max<uint32_t>(2 * R, 64);
  bp.alpha = metric == Metric::kL2 ? 1.2f : 0.95f;
  return bp;
}

/// Default window sweep used for QPS/recall curves.
inline std::vector<RuntimeParams> DefaultWindowSweep() {
  return WindowSweep({10, 14, 20, 28, 40, 56, 80, 112, 160, 224});
}

/// Prints one "recall qps" sweep in the figures' format.
inline void PrintCurve(const std::string& label,
                       const std::vector<SweepPoint>& pts) {
  PrintSweep(label, pts);
  std::printf("\n");
}

/// Formats "QPS @ recall>=target" for table rows ("-" when unreachable).
inline std::string QpsCell(const std::vector<SweepPoint>& pts, double target) {
  const SweepPoint* p = PointAtRecall(pts, target);
  if (p == nullptr) return "      -";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%7.0f", p->qps);
  return buf;
}

inline double Mib(size_t bytes) { return static_cast<double>(bytes) / 1048576.0; }

}  // namespace blinkbench
