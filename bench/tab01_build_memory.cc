// Table 1: memory requirements (graph + vectors) for graph construction
// with full-precision vs LVQ-4 vectors.
//
// The paper reports GiB at production scale (1B / 100M / 10M points). The
// per-vector layouts here are byte-identical to the production ones, so we
// (a) measure the per-vector footprint of our actual structures at bench
// scale, then (b) project to the paper's n to print Table 1's numbers.
#include "common.h"

using namespace blinkbench;

namespace {

struct Shape {
  const char* name;
  size_t d;
  size_t paper_n;
};

void Row(const Shape& s, uint32_t R) {
  // Build tiny instances to read the real strides off the structures.
  SyntheticSpec spec;
  spec.family = s.d == 768 ? DatasetFamily::kDpr
                           : (s.d == 200 ? DatasetFamily::kT2i
                                         : DatasetFamily::kDeep);
  spec.n = 512;
  spec.nq = 1;
  spec.d = s.d;
  Dataset data = GenerateDataset(spec);

  FlatGraph graph(spec.n, R, /*use_huge_pages=*/false);
  const double graph_bytes_per_node =
      static_cast<double>(graph.memory_bytes()) / spec.n;

  FloatStorage fp(data.base, data.metric, false);
  LvqDataset::Options l4;
  l4.bits = 4;
  LvqDataset lvq = LvqDataset::Encode(data.base, l4);

  const double fp_bytes = graph_bytes_per_node + s.d * 4.0;
  const double lvq_bytes = graph_bytes_per_node + lvq.vector_footprint();

  const double to_gib = static_cast<double>(s.paper_n) / (1024.0 * 1024 * 1024);
  std::printf("%-22s R=%-4u FP=%7.0f GiB   LVQ-4=%7.0f GiB   ratio=%.2f\n",
              s.name, R, fp_bytes * to_gib, lvq_bytes * to_gib,
              fp_bytes / lvq_bytes);
}

}  // namespace

int main() {
  Banner("Table 1", "graph-build memory: full-precision vs LVQ-4 vectors");
  const Shape shapes[] = {
      {"deep-96-1B", 96, 1000000000ull},
      {"text2Image-200-100M", 200, 100000000ull},
      {"DPR-768-10M", 768, 10000000ull},
  };
  std::printf("(projected to paper-scale n from measured per-vector strides;\n"
              " paper Table 1: ratios 1.59-2.84 / 2.13-4.00 / 3.98-6.20)\n\n");
  for (const Shape& s : shapes) {
    for (uint32_t R : {32u, 64u, 128u}) Row(s, R);
    std::printf("\n");
  }
  return 0;
}
