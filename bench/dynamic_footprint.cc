// dynamic_footprint — compressed vs float32 dynamic index under churn.
//
// The tentpole claim (ISSUE 4): the streaming path gets the same LVQ
// footprint win as the static one. A fixed-seed insert/delete/search churn
// workload (dim=128, sift-like) runs against three dynamic indices —
// float32, LVQ-8, LVQ-4x8 — and reports vector-storage bytes (the
// compressed quantity; the adjacency arena is identical across encodings
// and printed once), process RSS growth across the build, search QPS, and
// recall@10 against float brute force over the live set.
//
// Acceptance: LVQ-8 storage <= 0.35x float32 at dim=128, recall@10 >= 0.95.
//
// Scales with BLINK_SCALE like every bench.
#include <map>
#include <set>

#include "common.h"

namespace blinkbench {
namespace {

constexpr size_t kK = 10;
constexpr uint32_t kWindow = 64;

struct ChurnResult {
  std::string name;
  size_t storage_bytes = 0;
  size_t graph_bytes = 0;
  size_t rss_growth = 0;
  double qps = 0.0;
  double recall = 0.0;
};

/// The fixed-seed churn: stream-insert the base, delete a third, purge,
/// re-insert fresh rows into the recycled slots. Returns live id -> row.
template <typename Index>
std::map<uint32_t, size_t> RunChurn(Index* idx, const Dataset& data) {
  const size_t n = data.base.rows();
  const size_t initial = n * 3 / 4, churn = n - initial;
  std::map<uint32_t, size_t> live;
  for (size_t i = 0; i < initial; ++i) {
    live[idx->Insert(data.base.row(i))] = i;
  }
  Rng rng(1234);
  for (size_t i = 0; i < churn; ++i) {
    auto it = live.begin();
    std::advance(it, rng.Bounded(live.size()));
    (void)idx->Delete(it->first);
    live.erase(it);
  }
  idx->ConsolidateDeletes();
  for (size_t i = initial; i < n; ++i) {
    live[idx->Insert(data.base.row(i))] = i;
  }
  return live;
}

/// Brute-force recall@k of the index over its live set (float ground truth).
template <typename Index>
double ChurnRecall(const Index& idx, const Dataset& data,
                   const std::map<uint32_t, size_t>& live) {
  const size_t dim = data.base.cols();
  double total = 0.0;
  SearchResult res;
  for (size_t qi = 0; qi < data.queries.rows(); ++qi) {
    const float* q = data.queries.row(qi);
    std::vector<std::pair<float, uint32_t>> exact;
    exact.reserve(live.size());
    for (const auto& [id, row] : live) {
      exact.push_back({simd::L2Sqr(q, data.base.row(row), dim), id});
    }
    std::sort(exact.begin(), exact.end());
    const size_t kk = std::min(kK, exact.size());
    std::set<uint32_t> gt;
    for (size_t j = 0; j < kk; ++j) gt.insert(exact[j].second);
    idx.Search(q, kK, kWindow, &res);
    size_t hits = 0;
    for (uint32_t id : res.ids) hits += gt.count(id);
    total += static_cast<double>(hits) / static_cast<double>(kk);
  }
  return total / static_cast<double>(data.queries.rows());
}

template <typename Index>
double ChurnQps(const Index& idx, const Dataset& data) {
  typename Index::SearchScratch scratch;
  SearchResult res;
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t;
    for (size_t qi = 0; qi < data.queries.rows(); ++qi) {
      idx.Search(data.queries.row(qi), kK, kWindow, &res, &scratch);
    }
    best = std::max(best,
                    static_cast<double>(data.queries.rows()) / t.Seconds());
  }
  return best;
}

template <typename Index>
ChurnResult Measure(Index* idx, const std::string& name, const Dataset& data) {
  ChurnResult r;
  r.name = name;
  const size_t rss_before = CurrentRssBytes();
  const auto live = RunChurn(idx, data);
  r.rss_growth = CurrentRssBytes() - std::min(CurrentRssBytes(), rss_before);
  r.storage_bytes = idx->storage().memory_bytes();
  r.graph_bytes = idx->graph().memory_bytes();
  r.qps = ChurnQps(*idx, data);
  r.recall = ChurnRecall(*idx, data, live);
  return r;
}

void Run() {
  const size_t n = ScaledN(40000, 4000);
  const size_t nq = ScaledN(200, 50);
  Dataset data = MakeSiftLike(n, nq, /*seed=*/7);  // dim = 128
  const size_t dim = data.base.cols();
  std::printf("churn workload: %zu inserts (25%% through recycled slots), "
              "%zu deletes + purge, d=%zu, W=%u, k=%zu\n\n",
              n, n / 4, dim, kWindow, kK);

  DynamicOptions opts;
  opts.graph_max_degree = 32;
  opts.build_window = 64;
  opts.metric = data.metric;
  opts.alpha = 1.2f;
  opts.initial_capacity = n;  // identical arenas: ratio reflects encoding

  std::vector<ChurnResult> rows;
  {
    DynamicIndex f32(dim, opts);
    rows.push_back(Measure(&f32, "float32", data));
  }
  for (const auto& [b1, b2] : {std::pair<int, int>{8, 0}, {4, 8}}) {
    DynamicLvqDataset::Options lo;
    lo.bits1 = b1;
    lo.bits2 = b2;
    lo.mean = DynamicLvqDataset::SampleMean(data.base);
    DynamicLvqIndex lvq(dim, opts,
                        DynamicLvqStorage(dim, data.metric, std::move(lo)));
    rows.push_back(Measure(
        &lvq, b2 > 0 ? "LVQ-" + std::to_string(b1) + "x" + std::to_string(b2)
                     : "LVQ-" + std::to_string(b1),
        data));
  }

  const double f32_storage = static_cast<double>(rows[0].storage_bytes);
  std::printf("%-10s %12s %8s %12s %10s %10s %9s\n", "encoding",
              "storage MiB", "ratio", "rss-grow MiB", "QPS", "recall@10",
              "graph MiB");
  for (const ChurnResult& r : rows) {
    std::printf("%-10s %12.1f %8.3f %12.1f %10.0f %10.4f %9.1f\n",
                r.name.c_str(), Mib(r.storage_bytes),
                static_cast<double>(r.storage_bytes) / f32_storage,
                Mib(r.rss_growth), r.qps, r.recall, Mib(r.graph_bytes));
  }
  std::printf("\n(acceptance: LVQ-8 storage ratio <= 0.35 at d=128, "
              "recall@10 >= 0.95 under churn)\n");
}

}  // namespace
}  // namespace blinkbench

int main() {
  blinkbench::Banner("dynamic_footprint",
                     "compressed dynamic index: footprint and recall under "
                     "insert/delete/search churn");
  blinkbench::Run();
  return 0;
}
