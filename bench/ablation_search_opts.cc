// Ablations the paper narrates without a dedicated figure (DESIGN.md
// D3-D5):
//   1. visited-set on/off (Sec. 5: disabling it gains 2-20% depending on
//      CPU and dimensionality),
//   2. sorted linear buffer vs binary heap for the candidate queue
//      (Sec. 5: the buffer is faster for practical W),
//   3. two-level re-ranking on/off at fixed window (Sec. 3.2).
#include <queue>

#include "common.h"

using namespace blinkbench;

namespace {

/// Heap-based greedy search — the "common implementation" the paper's
/// sorted linear buffer replaces. Same storage, same graph, same visited
/// tracking; only the queue structure differs.
template <typename Storage>
class HeapSearcher {
 public:
  HeapSearcher(const FlatGraph* g, const Storage* s) : graph_(g), storage_(s) {}

  void Search(const float* query, size_t k, uint32_t entry, uint32_t window,
              std::vector<uint32_t>* out) {
    storage_->PrepareQuery(query, &q_);
    if (visited_.size() != storage_->size()) {
      visited_.assign(storage_->size(), 0);
      epoch_ = 0;
    }
    ++epoch_;
    using C = std::pair<float, uint32_t>;
    std::priority_queue<C, std::vector<C>, std::greater<>> frontier;
    std::priority_queue<C> best;  // max-heap of current top-window
    const float d0 = storage_->Distance(q_, entry);
    frontier.push({d0, entry});
    best.push({d0, entry});
    visited_[entry] = epoch_;
    while (!frontier.empty()) {
      const C c = frontier.top();
      if (best.size() >= window && c.first > best.top().first) break;
      frontier.pop();
      const uint32_t* nbrs = graph_->neighbors(c.second);
      const uint32_t deg = graph_->degree(c.second);
      for (uint32_t t = 0; t < deg; ++t) {
        const uint32_t cand = nbrs[t];
        if (visited_[cand] == epoch_) continue;
        visited_[cand] = epoch_;
        const float dist = storage_->Distance(q_, cand);
        if (best.size() < window || dist < best.top().first) {
          frontier.push({dist, cand});
          best.push({dist, cand});
          if (best.size() > window) best.pop();
        }
      }
    }
    std::vector<C> sorted;
    sorted.reserve(best.size());
    while (!best.empty()) {
      sorted.push_back(best.top());
      best.pop();
    }
    std::sort(sorted.begin(), sorted.end());
    out->clear();
    for (size_t i = 0; i < std::min(k, sorted.size()); ++i) {
      out->push_back(sorted[i].second);
    }
  }

 private:
  const FlatGraph* graph_;
  const Storage* storage_;
  typename Storage::Query q_;
  std::vector<uint32_t> visited_;
  uint32_t epoch_ = 0;
};

}  // namespace

int main() {
  Banner("Search-engine ablations", "visited set / queue structure / rerank");
  const size_t n = ScaledN(30000), nq = 1000, k = 10;
  Dataset data = MakeDeepLike(n, nq);
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, k, data.metric);
  auto idx = BuildOgLvq(data.base, data.metric, 8, 0, GraphParams(32, data.metric));
  HarnessOptions opts;
  opts.best_of = 5;

  // --- D5: visited set on/off ---
  std::printf("D5: visited-set ablation (W=40)\n");
  for (bool visited : {true, false}) {
    std::vector<RuntimeParams> s = WindowSweep({40});
    s[0].use_visited_set = visited;
    auto pts = RunSweep(*idx, data.queries, gt, s, opts);
    std::printf("  visited=%-5s QPS=%8.0f recall=%.4f\n",
                visited ? "on" : "off", pts[0].qps, pts[0].recall);
  }

  // --- D4: sorted linear buffer vs binary heap ---
  std::printf("\nD4: queue-structure ablation (W=40, visited set on for both)\n");
  {
    std::vector<RuntimeParams> s = WindowSweep({40});
    s[0].use_visited_set = true;
    auto pts = RunSweep(*idx, data.queries, gt, s, opts);
    std::printf("  sorted-linear-buffer QPS=%8.0f recall=%.4f\n", pts[0].qps,
                pts[0].recall);
  }
  {
    HeapSearcher<LvqStorage> heap(&idx->graph(), &idx->storage());
    std::vector<uint32_t> out;
    Matrix<uint32_t> ids(nq, k);
    double best = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      Timer t;
      for (size_t q = 0; q < nq; ++q) {
        heap.Search(data.queries.row(q), k, idx->entry_point(), 40, &out);
        for (size_t j = 0; j < k; ++j) {
          ids(q, j) = j < out.size() ? out[j] : UINT32_MAX;
        }
      }
      best = std::max(best, static_cast<double>(nq) / t.Seconds());
    }
    std::printf("  binary-heap          QPS=%8.0f recall=%.4f\n", best,
                MeanRecallAtK(ids, gt, k));
  }

  // --- D3: re-ranking on/off for a two-level index ---
  std::printf("\nD3: two-level re-rank ablation (LVQ-4x8, W=40)\n");
  auto idx2 = BuildOgLvq(data.base, data.metric, 4, 8, GraphParams(32, data.metric));
  for (bool rerank : {true, false}) {
    std::vector<RuntimeParams> s = WindowSweep({40});
    s[0].rerank = rerank;
    auto pts = RunSweep(*idx2, data.queries, gt, s, opts);
    std::printf("  rerank=%-5s QPS=%8.0f recall=%.4f\n", rerank ? "on" : "off",
                pts[0].qps, pts[0].recall);
  }
  return 0;
}
