// LeanVec pareto (DESIGN.md D14): QPS/recall on a d=768 DPR-like embedding
// workload, LeanVec (projected primary + full-dimension re-rank through the
// Reranker seam) against the paper's static two-level LVQ-4x8. High
// dimensionality is where searching a learned d' = d/4 projection pays:
// the acceptance bar is >= 2x batch QPS at iso-recall@10 >= 0.95.
//
// Prints one QPS/recall curve per flavor plus the QPS-at-0.95 ratio table;
// exits non-zero when LeanVec misses the 2x bar at full scale (CI smoke
// runs at BLINK_SCALE=0.1, where the bar is reported but not enforced —
// tiny datasets under-reward projection width).
#include <algorithm>
#include <cstdlib>

#include "common.h"

using namespace blinkbench;

namespace {

struct FlavorRun {
  std::string name;
  std::vector<SweepPoint> curve;
  double qps_at_target = 0.0;
};

FlavorRun RunFlavor(const char* kind_name, const Dataset& data,
                    const Matrix<uint32_t>& gt, double target_recall,
                    ThreadPool* pool) {
  IndexSpec spec;
  auto kind = ParseIndexKind(kind_name);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    std::exit(1);
  }
  spec.kind = kind.value();
  spec.metric = data.metric;
  spec.bits1 = 4;
  spec.bits2 = 8;
  spec.graph = GraphParams(32, data.metric);

  Timer t;
  Result<Index> index = Build(spec, data.base, pool);
  if (!index.ok()) {
    std::fprintf(stderr, "%s: %s\n", kind_name,
                 index.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("built %-24s in %6.1fs  (%7.1f MiB, primary dim %zu)\n",
              index.value().name().c_str(), t.Seconds(),
              Mib(index.value().memory_bytes()),
              index.value().spec().leanvec_dim > 0
                  ? index.value().spec().leanvec_dim
                  : index.value().dim());

  HarnessOptions hopts;
  hopts.best_of = 3;
  hopts.pool = pool;
  FlavorRun run;
  run.name = index.value().name();
  run.curve = RunSweep(index.value().AsSearchIndex(), data.queries, gt,
                       DefaultWindowSweep(), hopts);
  run.qps_at_target = QpsAtRecall(run.curve, target_recall);
  return run;
}

}  // namespace

int main() {
  Banner("LEANVEC-PARETO",
         "LeanVec vs OG-LVQ-4x8 on d=768 (QPS at 0.95 10-recall@10)");
  const double scale = BenchScale();
  const size_t n = std::max<size_t>(2000, static_cast<size_t>(20000 * scale));
  const size_t nq = std::max<size_t>(100, static_cast<size_t>(1000 * scale));
  const double target = 0.95;

  ThreadPool pool(NumThreads());
  Dataset data = MakeDprLike(n, nq, /*seed=*/77);
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, 10, data.metric, &pool);
  std::printf("%s: n=%zu nq=%zu d=%zu metric=%s\n\n", data.name.c_str(), n,
              nq, data.base.cols(), MetricName(data.metric));

  const FlavorRun lvq = RunFlavor("static-lvq", data, gt, target, &pool);
  const FlavorRun lv = RunFlavor("static-leanvec", data, gt, target, &pool);
  const FlavorRun lvl =
      RunFlavor("static-leanvec-lvq", data, gt, target, &pool);
  std::printf("\n");
  PrintCurve(lvq.name, lvq.curve);
  PrintCurve(lv.name, lv.curve);
  PrintCurve(lvl.name, lvl.curve);

  std::printf("=== QPS at %.2f 10-recall@10 ===\n", target);
  std::printf("%-28s %10s %8s\n", "flavor", "QPS", "vs LVQ");
  auto row = [&](const FlavorRun& r) {
    std::printf("%-28s %10.0f %7.2fx\n", r.name.c_str(), r.qps_at_target,
                lvq.qps_at_target > 0 ? r.qps_at_target / lvq.qps_at_target
                                      : 0.0);
  };
  row(lvq);
  row(lv);
  row(lvl);

  const double best =
      std::max(lv.qps_at_target, lvl.qps_at_target);
  const double ratio =
      lvq.qps_at_target > 0 ? best / lvq.qps_at_target : 0.0;
  const bool pass = ratio >= 2.0;
  std::printf("\nbest LeanVec speedup at iso-recall: %.2fx (bar: 2.00x) — %s\n",
              ratio, pass ? "PASS" : "FAIL");
  // Only full scale enforces the bar: sub-scale runs (CI smoke) keep the
  // report informational so a 0.1-scale dataset can't fail the pipeline.
  return pass || scale < 1.0 ? 0 : 1;
}
