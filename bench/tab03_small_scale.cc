// Table 3 + Figures 9/17: small-scale comparison across five dataset
// families and five methods, in full-batch and single-query modes, at 0.9
// 10-recall@10. Also prints the full QPS/recall curves for two datasets
// (the Fig. 9 panels).
//
// NGT-qg is omitted as in the paper's large-scale study (no reimplementable
// open spec at the required fidelity); DESIGN.md §2 documents this.
#include <cmath>

#include "common.h"

using namespace blinkbench;

namespace {

struct MethodResult {
  double batch_qps = 0.0;
  double single_qps = 0.0;
};

struct TableRow {
  std::string dataset;
  MethodResult og, vamana, hnsw, ivf, scann;
};

MethodResult Eval(const SearchIndex& idx, const Dataset& data,
                  const Matrix<uint32_t>& gt,
                  const std::vector<RuntimeParams>& sweep,
                  std::vector<SweepPoint>* batch_curve = nullptr) {
  HarnessOptions batch;
  batch.best_of = 3;
  auto pts = RunSweep(idx, data.queries, gt, sweep, batch);
  if (batch_curve != nullptr) *batch_curve = pts;
  HarnessOptions single = batch;
  single.single_query = true;
  single.best_of = 1;
  auto spts = RunSweep(idx, data.queries, gt, sweep, single);
  const SweepPoint* b = PointAtRecall(pts, 0.9);
  const SweepPoint* s = PointAtRecall(spts, 0.9);
  return {b != nullptr ? b->qps : 0.0, s != nullptr ? s->qps : 0.0};
}

TableRow RunDataset(Dataset data, bool print_curves) {
  const size_t k = 10;
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, k, data.metric);
  TableRow row;
  row.dataset = data.name;
  const auto graph_sweep = DefaultWindowSweep();
  const auto probe_sweep = ProbeSweep({1, 2, 4, 8, 16, 32, 64}, {0, 20, 100, 400});

  {
    auto idx = BuildOgLvq(data.base, data.metric, 8, 0,
                          GraphParams(32, data.metric));
    std::vector<SweepPoint> curve;
    row.og = Eval(*idx, data, gt, graph_sweep, &curve);
    if (print_curves) PrintCurve(row.dataset + " / " + idx->name(), curve);
  }
  {
    auto idx = BuildVamanaF32(data.base, data.metric, GraphParams(32, data.metric));
    std::vector<SweepPoint> curve;
    row.vamana = Eval(*idx, data, gt, graph_sweep, &curve);
    if (print_curves) PrintCurve(row.dataset + " / " + idx->name(), curve);
  }
  {
    HnswParams hp;
    hp.M = 16;
    hp.ef_construction = 120;
    HnswIndex idx(data.base, data.metric, hp);
    row.hnsw = Eval(idx, data, gt, graph_sweep);
  }
  {
    IvfPqParams ip;
    ip.nlist = std::max<size_t>(32, data.base.rows() / 256);
    ip.pq.num_segments = std::max<size_t>(8, data.base.cols() / 2);
    IvfPqIndex idx(data.base, data.metric, ip);
    row.ivf = Eval(idx, data, gt, probe_sweep);
  }
  {
    ScannParams sp;
    ScannIndex idx(data.base, data.metric, sp);
    row.scann = Eval(idx, data, gt, probe_sweep);
  }
  return row;
}

void PrintTable(const std::vector<TableRow>& rows, bool batch) {
  std::printf("\n=== Table 3 (%s mode): QPS at 0.9 10-recall@10 ===\n",
              batch ? "full query batch" : "single query");
  std::printf("%-20s %10s %10s %8s %10s %8s %10s %8s %10s %8s\n", "dataset",
              "OG-LVQ", "Vamana", "ratio", "HNSW", "ratio", "IVFPQ", "ratio",
              "ScaNN", "ratio");
  double geo[4] = {0, 0, 0, 0};
  size_t counted = 0;
  for (const auto& r : rows) {
    auto q = [&](const MethodResult& m) { return batch ? m.batch_qps : m.single_qps; };
    const double og = q(r.og);
    auto ratio = [&](double other) { return other > 0 ? og / other : 0.0; };
    std::printf("%-20s %10.0f %10.0f %8.2f %10.0f %8.2f %10.0f %8.2f %10.0f %8.2f\n",
                r.dataset.c_str(), og, q(r.vamana), ratio(q(r.vamana)),
                q(r.hnsw), ratio(q(r.hnsw)), q(r.ivf), ratio(q(r.ivf)),
                q(r.scann), ratio(q(r.scann)));
    if (og > 0 && q(r.vamana) > 0 && q(r.hnsw) > 0 && q(r.ivf) > 0 &&
        q(r.scann) > 0) {
      geo[0] += std::log(ratio(q(r.vamana)));
      geo[1] += std::log(ratio(q(r.hnsw)));
      geo[2] += std::log(ratio(q(r.ivf)));
      geo[3] += std::log(ratio(q(r.scann)));
      ++counted;
    }
  }
  if (counted > 0) {
    std::printf("%-20s %10s %10s %8.2f %10s %8.2f %10s %8.2f %10s %8.2f\n",
                "geometric mean", "", "", std::exp(geo[0] / counted), "",
                std::exp(geo[1] / counted), "", std::exp(geo[2] / counted), "",
                std::exp(geo[3] / counted));
  }
}

}  // namespace

int main() {
  Banner("Table 3 / Figures 9, 17", "small-scale comparison, 5 datasets");
  std::vector<TableRow> rows;
  rows.push_back(RunDataset(MakeDeepLike(ScaledN(8000), 200), /*curves=*/true));
  rows.push_back(RunDataset(MakeGistLike(ScaledN(3000), 100), false));
  rows.push_back(RunDataset(MakeGloveLike(25, ScaledN(8000), 200), false));
  rows.push_back(RunDataset(MakeGloveLike(50, ScaledN(8000), 200), /*curves=*/true));
  rows.push_back(RunDataset(MakeSiftLike(ScaledN(8000), 200), false));
  PrintTable(rows, /*batch=*/true);
  PrintTable(rows, /*batch=*/false);
  std::printf("\nPaper: OG-LVQ wins all 5 batch cases (geo-mean ratios 1.8x-\n"
              "4.4x) and 3/5 single-query cases against these baselines.\n");
  return 0;
}
