// Figure 1 / Figure 21(a): throughput vs memory footprint at 0.9
// 10-recall@10 for the deep-96 family.
//
// Graph methods appear at R = {32, 64, 128} (HNSW at M = R/2); the
// partition methods (IVFPQ+refine, ScaNN-like) have an essentially flat
// footprint across their runtime parameters. The paper's headline: the
// low-memory OG-LVQ configuration (LVQ-8, R = 32) beats everything with a
// fraction of the memory, and OG-LVQ at R = 128 is the throughput leader.
#include "common.h"

using namespace blinkbench;

namespace {

struct Row {
  std::string name;
  double mib;
  double qps_at_09;
  double best_recall;
};

Row Eval(const SearchIndex& idx, const Dataset& data,
         const Matrix<uint32_t>& gt, const std::vector<RuntimeParams>& sweep) {
  HarnessOptions opts;
  opts.best_of = 3;
  auto pts = RunSweep(idx, data.queries, gt, sweep, opts);
  double best_recall = 0.0;
  for (const auto& p : pts) best_recall = std::max(best_recall, p.recall);
  const SweepPoint* at = PointAtRecall(pts, 0.9);
  return {idx.name(), Mib(idx.memory_bytes()), at != nullptr ? at->qps : 0.0,
          best_recall};
}

}  // namespace

int main() {
  Banner("Figure 1 / 21(a)", "QPS vs memory footprint @ 0.9 recall, deep-96");
  const size_t n = ScaledN(12000), nq = 400, k = 10;
  Dataset data = MakeDeepLike(n, nq);
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, k, data.metric);

  std::vector<Row> rows;
  const auto graph_sweep = DefaultWindowSweep();

  for (uint32_t R : {32u, 64u, 128u}) {
    auto og = BuildOgLvq(data.base, data.metric, 8, 0, GraphParams(R, data.metric));
    rows.push_back(Eval(*og, data, gt, graph_sweep));
    auto vam = BuildVamanaF32(data.base, data.metric, GraphParams(R, data.metric));
    rows.push_back(Eval(*vam, data, gt, graph_sweep));
    HnswParams hp;
    hp.M = R / 2;
    hp.ef_construction = 120;
    HnswIndex hnsw(data.base, data.metric, hp);
    rows.push_back(Eval(hnsw, data, gt, graph_sweep));
  }
  {
    IvfPqParams ip;
    ip.nlist = std::max<size_t>(64, n / 256);
    ip.pq.num_segments = 48;
    IvfPqIndex ivf(data.base, data.metric, ip);
    rows.push_back(Eval(ivf, data, gt,
                        ProbeSweep({1, 4, 8, 16, 32, 64}, {0, 10, 100, 500})));
  }
  {
    ScannParams sp;
    ScannIndex scann(data.base, data.metric, sp);
    rows.push_back(
        Eval(scann, data, gt,
             ProbeSweep({2, 4, 8, 16, 32, 64, 128}, {20, 100, 500})));
  }

  std::printf("%-24s %12s %14s %12s\n", "method", "memory(MiB)", "QPS@0.9rec",
              "best recall");
  for (const Row& r : rows) {
    std::printf("%-24s %12.1f %14.0f %12.4f\n", r.name.c_str(), r.mib,
                r.qps_at_09, r.best_recall);
  }
  std::printf("\nPaper (deep-96-1B): OG-LVQ8/R32 beats Vamana, HNSWlib,\n"
              "IVFPQfs, ScaNN by 2.3x/2.2x/20.7x/43.6x QPS with 3.0/3.3/1.7/\n"
              "1.8x less memory; OG-LVQ8/R128 is the overall QPS leader.\n");
  return 0;
}
