// Table 4: QPS / compression-ratio / memory-ratio of float16, LVQ-8,
// LVQ-4x4 and LVQ-4x8 relative to float32, on the three large-scale
// dataset stand-ins (graph R = 64, the scaled stand-in for the paper's
// R = 128).
#include "common.h"

using namespace blinkbench;

namespace {

struct Cell {
  double qps_ratio;
  double cr;
  double mr;
};

void RunDataset(Dataset data) {
  const size_t k = 10;
  Matrix<uint32_t> gt =
      ComputeGroundTruth(data.base, data.queries, k, data.metric);
  const VamanaBuildParams bp = GraphParams(64, data.metric);
  HarnessOptions opts;
  opts.best_of = 3;
  const auto sweep = DefaultWindowSweep();

  auto f32 = BuildVamanaF32(data.base, data.metric, bp);
  auto pts32 = RunSweep(*f32, data.queries, gt, sweep, opts);
  const double q32 = QpsAtRecall(pts32, 0.9);
  const double m32 = static_cast<double>(f32->memory_bytes());
  const double v32 = static_cast<double>(data.base.cols()) * 4.0;

  std::printf("--- %s (d=%zu, n=%zu), ratios vs float32 (QPS@0.9=%.0f) ---\n",
              data.name.c_str(), data.base.cols(), data.base.rows(), q32);
  std::printf("%-10s %8s %6s %6s\n", "encoding", "QPS", "CR", "MR");

  auto report = [&](const SearchIndex& idx, double vec_bytes,
                    const char* label) {
    auto pts = RunSweep(idx, data.queries, gt, sweep, opts);
    const double q = QpsAtRecall(pts, 0.9);
    std::printf("%-10s %7.2fx %5.1fx %5.1fx\n", label,
                q32 > 0 ? q / q32 : 0.0, v32 / vec_bytes,
                m32 / static_cast<double>(idx.memory_bytes()));
  };

  {
    auto idx = BuildVamanaF16(data.base, data.metric, bp);
    report(*idx, data.base.cols() * 2.0, "float16");
  }
  {
    auto idx = BuildOgLvq(data.base, data.metric, 8, 0, bp);
    report(*idx, static_cast<double>(idx->storage().level1().vector_footprint()),
           "LVQ-8");
  }
  {
    auto idx = BuildOgLvq(data.base, data.metric, 4, 4, bp);
    report(*idx, static_cast<double>(idx->storage().level2()->vector_footprint()),
           "LVQ-4x4");
  }
  {
    auto idx = BuildOgLvq(data.base, data.metric, 4, 8, bp);
    report(*idx, static_cast<double>(idx->storage().level2()->vector_footprint()),
           "LVQ-4x8");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Banner("Table 4", "QPS/CR/MR of encodings vs float32 (R=64 graphs)");
  RunDataset(MakeDeepLike(ScaledN(20000), 400));
  RunDataset(MakeT2iLike(ScaledN(10000), 200));
  RunDataset(MakeDprLike(ScaledN(6000), 150));
  std::printf("Paper (R=128): QPS gains 2.6x/2.9x/3.1x for LVQ-8 and up to\n"
              "4.7x for LVQ-4x8 on DPR-768; CR up to 3.8x, MR up to 2.7x.\n"
              "At bench scale (cache-resident) QPS ratios compress toward 1;\n"
              "CR and MR are scale-independent and should match.\n");
  return 0;
}
