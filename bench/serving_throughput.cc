// serving_throughput — pooled-searcher ServingEngine vs per-call
// SearchBatch, swept over thread count x request batch size.
//
// The serving claim (ISSUE 2): when traffic arrives as many small batches,
// per-call SearchBatch pays a fresh GreedySearcher — visited array
// allocation + zeroing, scratch, query state — per slice per call, while
// the engine's pooled searchers keep that state warm (visited reset is an
// epoch bump). The sweep reports QPS for both paths and the speedup; the
// acceptance bar is >= 1.2x at 8 threads on the synthetic dataset.
//
// Scales with BLINK_SCALE like every bench.
#include "common.h"

namespace blinkbench {
namespace {

constexpr size_t kK = 10;

double BestOf3(const std::function<double()>& run) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) best = std::max(best, run());
  return best;
}

void Sweep() {
  // Serving-scale corpus: the per-call overhead being amortized (fresh
  // visited array: O(n) allocate + zero per searcher per call) only shows
  // at realistic index sizes; at toy sizes both paths tie.
  const size_t n = ScaledN(150000, 8000);
  const size_t nq = ScaledN(1000, 250);
  Dataset data = MakeDeepLike(n, nq, /*seed=*/42);
  ThreadPool build_pool(NumThreads());
  VamanaBuildParams bp = GraphParams(32, data.metric);
  auto index = BuildOgLvq(data.base, data.metric, 8, 0, bp, &build_pool);
  std::printf("index %s: n=%zu, %zu queries\n\n", index->name().c_str(), n, nq);

  RuntimeParams params;
  params.window = 32;

  std::printf("%-8s %-8s %12s %12s %9s\n", "threads", "batch", "percall_qps",
              "engine_qps", "speedup");
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    ServingOptions opts;
    opts.num_threads = threads;
    ServingEngine engine(index.get(), opts);
    for (size_t batch : {1u, 8u, 32u, 128u}) {
      Matrix<uint32_t> ids(nq, kK);
      // Baseline: the request stream hits SearchBatch directly, one call
      // per micro-batch — fresh searchers every call.
      const double percall = BestOf3([&] {
        Timer t;
        for (size_t lo = 0; lo < nq; lo += batch) {
          const size_t take = std::min(batch, nq - lo);
          MatrixViewF slice(data.queries.row(lo), take, data.queries.cols());
          index->SearchBatch(slice, kK, params, ids.row(lo), &pool);
        }
        return static_cast<double>(nq) / t.Seconds();
      });
      // Engine: same request stream through the pooled searchers.
      const double pooled = BestOf3([&] {
        Timer t;
        for (size_t lo = 0; lo < nq; lo += batch) {
          const size_t take = std::min(batch, nq - lo);
          MatrixViewF slice(data.queries.row(lo), take, data.queries.cols());
          engine.SearchBatch(slice, kK, params, ids.row(lo));
        }
        return static_cast<double>(nq) / t.Seconds();
      });
      std::printf("%-8zu %-8zu %12.0f %12.0f %8.2fx\n", threads, batch,
                  percall, pooled, pooled / percall);
    }
  }
  std::printf("\n(acceptance: engine >= 1.2x per-call at threads=8, small "
              "batches)\n");
}

}  // namespace
}  // namespace blinkbench

int main() {
  blinkbench::Banner("serving_throughput",
                     "ServingEngine searcher pooling vs per-call SearchBatch");
  blinkbench::Sweep();
  return 0;
}
