// Figure 7(d): throughput scaling with the number of threads, float16 vs
// LVQ-8.
//
// The paper's shape: float16 saturates at the physical core count because
// it exhausts memory bandwidth, while LVQ-8 keeps scaling into the
// hyperthreads (up to 80) thanks to its reduced bandwidth demand. We sweep
// 1..2x the host's hardware threads.
#include "common.h"

using namespace blinkbench;

namespace {

template <typename Index>
void Scaling(const Index& idx, const Dataset& data,
             [[maybe_unused]] const Matrix<uint32_t>& gt,
             const std::vector<size_t>& thread_counts) {
  std::printf("%-16s", idx.storage().encoding_name());
  RuntimeParams p;
  p.window = 40;
  Matrix<uint32_t> ids(data.queries.rows(), 10);
  double single = 0.0;
  for (size_t t : thread_counts) {
    ThreadPool pool(t);
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      Timer timer;
      idx.SearchBatch(data.queries, 10, p, ids.data(), t > 1 ? &pool : nullptr);
      best = std::max(best,
                      static_cast<double>(data.queries.rows()) / timer.Seconds());
    }
    if (t == thread_counts.front()) single = best;
    std::printf(" %8.0f(%4.1fx)", best, best / single);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Banner("Figure 7(d)", "QPS vs worker threads: float16 vs LVQ-8");
  const size_t n = ScaledN(30000), nq = 2000, k = 10;
  Dataset data = MakeDeepLike(n, nq);
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, k, data.metric);

  const size_t hw = NumThreads();
  std::vector<size_t> counts = {1};
  for (size_t t = 2; t <= 2 * hw; t *= 2) counts.push_back(t);
  if (counts.back() != 2 * hw) counts.push_back(2 * hw);

  std::printf("hardware threads: %zu; sweep:", hw);
  for (size_t t : counts) std::printf(" %zu", t);
  std::printf("\n\n");

  auto f16 = BuildVamanaF16(data.base, data.metric, GraphParams(32, data.metric));
  auto lvq = BuildOgLvq(data.base, data.metric, 8, 0, GraphParams(32, data.metric));
  Scaling(*f16, data, gt, counts);
  Scaling(*lvq, data, gt, counts);

  std::printf("\nPaper (40C/80T socket): float16 tops out at 40 threads\n"
              "(bandwidth-bound, 23.5x over 1T); LVQ-8 scales to 80 (33x).\n"
              "This host has %zu hardware thread(s): scaling saturates there.\n",
              hw);
  return 0;
}
