// Figure 7(b): effect of huge pages on search throughput.
//
// The paper preallocates 1 GiB pages with hugeadm and reports +20% (100M
// points) to +90% (1B). This VM exposes no hugetlbfs pool, so the arena
// falls back through its tiers (explicit 2 MiB -> transparent -> 4 KiB);
// we report which tier each index actually obtained together with its
// throughput, which reproduces the experiment's mechanics and measures
// whatever the host can deliver.
#include "common.h"

using namespace blinkbench;

namespace {

struct BuiltVariant {
  std::unique_ptr<VamanaIndex<LvqStorage>> idx;
  PageBacking graph_backing;
};

BuiltVariant Build(const Dataset& data, bool huge) {
  LvqDataset::Options o;
  o.bits = 8;
  o.use_huge_pages = huge;
  LvqDataset ds = LvqDataset::Encode(data.base, o);
  VamanaBuildParams bp = GraphParams(32, data.metric);
  bp.use_huge_pages = huge;
  LvqStorage storage(std::move(ds), data.metric);
  auto idx = std::make_unique<VamanaIndex<LvqStorage>>(std::move(storage), bp);
  const PageBacking backing = idx->graph().backing();
  return {std::move(idx), backing};
}

}  // namespace

int main() {
  Banner("Figure 7(b)", "huge pages vs standard pages");
  const size_t n = ScaledN(40000), nq = 500, k = 10;
  Dataset data = MakeDeepLike(n, nq);
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, k, data.metric);

  HarnessOptions opts;
  opts.best_of = 5;
  const auto sweep = WindowSweep({20, 40, 80});

  for (bool huge : {false, true}) {
    BuiltVariant v = Build(data, huge);
    auto pts = RunSweep(*v.idx, data.queries, gt, sweep, opts);
    std::printf("pages=%-22s (graph arena: %s)\n",
                huge ? "huge-requested" : "standard",
                PageBackingName(v.graph_backing));
    PrintCurve(v.idx->name(), pts);
  }
  std::printf("Paper: +20%% QPS at deep-96-100M, +90%% at deep-96-1B. The\n"
              "gain needs TLB pressure, i.e. working sets of tens of GiB;\n"
              "at bench scale expect parity unless BLINK_SCALE is large.\n");
  return 0;
}
