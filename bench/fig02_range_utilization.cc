// Figure 2: quantization-range utilization of global vs per-dimension vs
// LVQ normalization.
//
// The paper shows that for 95% of deep-96 vectors, global and per-dimension
// normalization use only ~60% / ~75% of the available code range, while
// LVQ's per-vector bounds use the whole range. We reproduce the statistic
// directly: for every vector, the fraction of the quantizer's input range
// its centered components actually span.
#include <algorithm>

#include "common.h"

using namespace blinkbench;

namespace {

/// Per-vector spans under each normalization, as fractions of the range the
/// quantizer must cover.
void Report(const Dataset& data) {
  const size_t n = data.base.rows(), d = data.base.cols();
  std::vector<float> mean(d, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) mean[j] += data.base(i, j);
  }
  for (auto& m : mean) m /= static_cast<float>(n);

  // Global bounds and per-dimension bounds over centered values.
  float glo = 1e30f, ghi = -1e30f;
  std::vector<float> dlo(d, 1e30f), dhi(d, -1e30f);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      const float v = data.base(i, j) - mean[j];
      glo = std::min(glo, v);
      ghi = std::max(ghi, v);
      dlo[j] = std::min(dlo[j], v);
      dhi[j] = std::max(dhi[j], v);
    }
  }

  // The paper's statistic: pool the *normalized* values u = (v - lo)/(hi-lo)
  // under each scheme and measure the central-95% span of u. A scheme that
  // wastes code range concentrates u in a narrow band.
  std::vector<double> u_global, u_perdim, u_lvq;
  u_global.reserve(n * d);
  u_perdim.reserve(n * d);
  u_lvq.reserve(n * d);
  for (size_t i = 0; i < n; ++i) {
    float lo = 1e30f, hi = -1e30f;
    for (size_t j = 0; j < d; ++j) {
      const float v = data.base(i, j) - mean[j];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const float lr = hi - lo;
    for (size_t j = 0; j < d; ++j) {
      const float v = data.base(i, j) - mean[j];
      u_global.push_back((v - glo) / (ghi - glo));
      const float dr = dhi[j] - dlo[j];
      u_perdim.push_back(dr > 0 ? (v - dlo[j]) / dr : 0.5f);
      u_lvq.push_back(lr > 0 ? (v - lo) / lr : 0.5f);
    }
  }

  auto span95 = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const size_t lo_i = static_cast<size_t>(0.025 * (v.size() - 1));
    const size_t hi_i = static_cast<size_t>(0.975 * (v.size() - 1));
    return v[hi_i] - v[lo_i];
  };

  std::printf("%-18s %-22s %-14s\n", "dataset", "normalization",
              "central-95%-span");
  std::printf("%-18s %-22s %-14.3f\n", data.name.c_str(), "global",
              span95(u_global));
  std::printf("%-18s %-22s %-14.3f\n", data.name.c_str(), "per-dimension",
              span95(u_perdim));
  std::printf("%-18s %-22s %-14.3f\n", data.name.c_str(), "LVQ (per-vector)",
              span95(u_lvq));

  // Code-level view: fraction of the 256 codes each scheme actually emits.
  LvqDataset::Options lo8;
  LvqDataset lvq = LvqDataset::Encode(data.base, lo8);
  GlobalDataset::Options go8;
  GlobalDataset glob = GlobalDataset::Encode(data.base, go8);
  Histogram h_lvq(0, 255, 64), h_glob(0, 255, 64);
  for (size_t i = 0; i < std::min<size_t>(n, 2000); ++i) {
    for (size_t j = 0; j < d; ++j) {
      h_lvq.Add(lvq.code(i, j));
      h_glob.Add(glob.code(i, j));
    }
  }
  std::printf("\ncode-histogram coverage (fraction of code bins carrying "
              ">=0.01%% mass):\n");
  std::printf("  LVQ-8:    %.3f\n", h_lvq.RangeUtilization(1e-4));
  std::printf("  global-8: %.3f\n", h_glob.RangeUtilization(1e-4));
}

}  // namespace

int main() {
  Banner("Figure 2", "range utilization: global vs per-dim vs LVQ bounds");
  Report(MakeDeepLike(ScaledN(50000), 10));
  std::printf("\nPaper: global ~60%%, per-dimension ~75%% of range for 95%% of\n"
              "vectors; LVQ uses the full range by construction.\n");
  return 0;
}
