// Figure 7(a): throughput vs the software-prefetch schedule
// (prefetch-offset, prefetch-step) for graph search.
//
// The paper's grid: offset_step in {0_0 (none), 0_1, 0_2, 0_4, 0_8, 0_64,
// 1_1, 1_2, 1_4, 1_8, 2_1, ..., 4_8}. At paper scale the dataset is far
// out of cache and prefetching yields up to 2x; at bench scale the effect
// shrinks with the working set (EXPERIMENTS.md discusses the delta).
#include "common.h"

using namespace blinkbench;

int main() {
  Banner("Figure 7(a)", "prefetch-offset/prefetch-step sweep");
  const size_t n = ScaledN(40000), nq = 500, k = 10;
  Dataset data = MakeDeepLike(n, nq);
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, k, data.metric);
  auto idx = BuildOgLvq(data.base, data.metric, 8, 0,
                        GraphParams(32, data.metric));
  std::printf("index: %s, n=%zu, working set %.1f MiB\n\n",
              idx->name().c_str(), n, Mib(idx->memory_bytes()));

  const std::pair<uint32_t, uint32_t> grid[] = {
      {0, 0}, {0, 1}, {0, 2}, {0, 4}, {0, 8}, {0, 64}, {1, 1}, {1, 2},
      {1, 4}, {1, 8}, {2, 1}, {2, 2}, {2, 4}, {2, 8}, {4, 1}, {4, 2},
      {4, 4}, {4, 8}};
  std::printf("%-18s %-12s %-10s\n", "offset_step", "QPS", "recall");
  double baseline = 0.0;
  for (const auto& [off, step] : grid) {
    std::vector<RuntimeParams> setting = WindowSweep({40});
    setting[0].prefetch_offset = off;
    setting[0].prefetch_step = step;
    HarnessOptions opts;
    opts.best_of = 5;
    auto pts = RunSweep(*idx, data.queries, gt, setting, opts);
    if (off == 0 && step == 0) baseline = pts[0].qps;
    std::printf("%u_%-16u %-12.0f %-10.4f  (%.2fx vs no-prefetch)\n", off, step,
                pts[0].qps, pts[0].recall, pts[0].qps / baseline);
  }
  std::printf("\nPaper: up to 2x over no-prefetch; step=1 schedules gain\n"
              "little; offset>0 or step>1 unlock the benefit.\n");
  return 0;
}
