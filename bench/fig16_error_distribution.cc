// Figure 16: the LVQ quantization error is uniform in [-Delta/2, Delta/2),
// except for a center spike from the per-vector min/max components, which
// reconstruct exactly (their codes sit on the bounds).
#include "common.h"

using namespace blinkbench;

namespace {

void Report(int bits) {
  Dataset data = MakeDeepLike(ScaledN(20000), 5);
  LvqDataset::Options o;
  o.bits = bits;
  LvqDataset ds = LvqDataset::Encode(data.base, o);
  const size_t n = ds.size(), d = ds.dim();

  // Pool errors normalized by each vector's Delta so the theoretical
  // distribution is U[-1/2, 1/2).
  Histogram all(-0.55, 0.55, 22), inner(-0.55, 0.55, 22);
  RunningStats stats;
  size_t exact_zero = 0, total = 0;
  std::vector<float> rec(d);
  for (size_t i = 0; i < n; ++i) {
    ds.Decode(i, rec.data());
    const float delta = ds.constants(i).delta;
    if (delta <= 0) continue;
    // Identify this vector's extreme components (exactly reconstructible).
    for (size_t j = 0; j < d; ++j) {
      const float err = (data.base(i, j) - rec[j]) / delta;
      all.Add(err);
      stats.Add(err);
      ++total;
      if (std::fabs(err) < 1e-6f) {
        ++exact_zero;
      } else {
        inner.Add(err);
      }
    }
  }

  std::printf("LVQ-%d normalized error (err / Delta): mean=%+.4f stddev=%.4f\n",
              bits, stats.mean(), stats.stddev());
  std::printf("  exactly-zero components: %.2f%% (the min/max spike)\n",
              100.0 * static_cast<double>(exact_zero) / static_cast<double>(total));
  std::printf("  uniform U[-1/2,1/2) predicts stddev %.4f\n", 1.0 / std::sqrt(12.0));
  std::printf("  full histogram:\n%s", all.ToAscii(40).c_str());
  std::printf("  spike removed (should be flat):\n%s\n", inner.ToAscii(40).c_str());

  // Flatness check on the spike-free histogram: max/min bin ratio.
  const auto& bins = inner.bins();
  size_t bmin = SIZE_MAX, bmax = 0;
  // Skip the two edge bins (half-covered by the [-1/2, 1/2) support).
  for (size_t b = 2; b + 2 < bins.size(); ++b) {
    bmin = std::min(bmin, bins[b]);
    bmax = std::max(bmax, bins[b]);
  }
  std::printf("  interior-bin max/min ratio: %.3f (1.0 = perfectly uniform)\n\n",
              bmin > 0 ? static_cast<double>(bmax) / static_cast<double>(bmin)
                       : 0.0);
}

}  // namespace

int main() {
  Banner("Figure 16", "LVQ quantization-error distribution vs uniform");
  Report(8);
  Report(4);
  return 0;
}
