// Filtered-search selectivity sweep (DESIGN.md D15).
//
// For each predicate selectivity in {50%, 10%, 1%, 0.1%}, runs the filtered
// static-lvq index under the three execution strategies (auto / post-filter
// / in-search) and reports recall@10 and QPS against brute-force *filtered*
// ground truth. Demonstrates the crossover rule: at high selectivity the
// widened post-filter wins, at <= 1% the in-search push-down both matches
// recall and beats post-filter throughput — and kAuto picks the winner.
//
// Gated (exit 1) on filtered recall@10 >= 0.9 at every selectivity with the
// auto strategy; QPS numbers are reported, not gated (CI runners are too
// noisy to gate throughput).
#include <memory>

#include "common.h"
#include "filter/synthetic.h"

using namespace blinkbench;

namespace {

// Valid-GT-normalized recall: |results ∩ GT| / |valid GT| per query. A
// sparse predicate can match fewer than k rows, so plain recall@k would be
// capped below 1.0 by construction; queries with empty GT are skipped.
double FilteredRecall(const Matrix<uint32_t>& ids, const Matrix<uint32_t>& gt,
                      size_t k) {
  double sum = 0.0;
  size_t counted = 0;
  for (size_t q = 0; q < gt.rows(); ++q) {
    size_t valid = 0, hit = 0;
    for (size_t j = 0; j < k; ++j) {
      const uint32_t want = gt(q, j);
      if (want == UINT32_MAX) continue;
      ++valid;
      for (size_t i = 0; i < k; ++i) {
        if (ids(q, i) == want) {
          ++hit;
          break;
        }
      }
    }
    if (valid == 0) continue;
    sum += static_cast<double>(hit) / static_cast<double>(valid);
    ++counted;
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 1.0;
}

struct Point {
  double recall = 0.0;
  double qps = 0.0;
};

Point Measure(const VamanaIndex<LvqStorage>& index, MatrixViewF queries,
              const Matrix<uint32_t>& fgt, size_t k,
              const SearchOptions& opts, ThreadPool* pool) {
  const size_t nq = queries.rows;
  Matrix<uint32_t> ids(nq, k);
  double best_seconds = -1.0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t;
    index.SearchBatch(queries, k, opts, ids.data(), pool);
    const double s = t.Seconds();
    if (best_seconds < 0.0 || s < best_seconds) best_seconds = s;
  }
  Point p;
  p.recall = FilteredRecall(ids, fgt, k);
  p.qps = best_seconds > 0.0 ? static_cast<double>(nq) / best_seconds : 0.0;
  return p;
}

}  // namespace

int main() {
  Banner("Filtered selectivity sweep",
         "post-filter vs in-search push-down across selectivities");
  const size_t n = ScaledN(60000), nq = 500, k = 10;
  const uint64_t seed = 21;
  Dataset data = MakeDeepLike(n, nq, seed);
  ThreadPool pool(NumThreads());

  auto index =
      BuildOgLvq(data.base, data.metric, 8, 0, GraphParams(24, data.metric),
                 &pool);
  auto md = std::make_shared<const MetadataStore>(
      MakeSyntheticMetadata(n, {ColumnType::kF64}, seed + 7));
  Status attached = index->AttachMetadata(md);
  if (!attached.ok()) {
    std::fprintf(stderr, "%s\n", attached.ToString().c_str());
    return 1;
  }

  struct Case {
    const char* expr;
    double selectivity;
  };
  const Case cases[] = {{"num0<0.5", 0.5},
                        {"num0<0.1", 0.1},
                        {"num0<0.01", 0.01},
                        {"num0<0.001", 0.001}};
  const struct {
    const char* name;
    FilterStrategy strategy;
  } strategies[] = {{"auto", FilterStrategy::kAuto},
                    {"post", FilterStrategy::kPostFilter},
                    {"insearch", FilterStrategy::kInSearch}};

  bool pass = true;
  for (const Case& c : cases) {
    Result<Predicate> parsed = Predicate::Parse(c.expr);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    auto pred = std::make_shared<Predicate>(std::move(parsed).value());
    Matrix<uint32_t> fgt = ComputeFilteredGroundTruth(
        data.base, data.queries, k, data.metric, *md, *pred, &pool);
    const double est = EstimateSelectivity(*md, *pred);
    const FilterStrategy picked =
        ResolveFilterStrategy(*md, *pred, FilterStrategy::kAuto);
    std::printf("selectivity %.3f (%s, estimated %.4f, auto -> %s)\n",
                c.selectivity, c.expr, est,
                picked == FilterStrategy::kInSearch ? "insearch" : "post");

    double auto_recall = 0.0;
    for (const auto& s : strategies) {
      SearchOptions opts;
      opts.window = 40;
      opts.filter = pred;
      opts.filter_strategy = s.strategy;
      const Point p = Measure(*index, data.queries, fgt, k, opts, &pool);
      std::printf("  %-8s recall@%zu %.4f  QPS %8.0f\n", s.name, k, p.recall,
                  p.qps);
      if (s.strategy == FilterStrategy::kAuto) auto_recall = p.recall;
    }
    if (auto_recall < 0.9) {
      std::printf("  FAIL: auto-strategy recall %.4f < 0.9\n", auto_recall);
      pass = false;
    }
    std::printf("\n");
  }
  std::printf("filtered recall gate (>= 0.9 at every selectivity): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
