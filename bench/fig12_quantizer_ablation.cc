// Figure 12: quantizer ablation under the same optimized graph engine —
// float32, LVQ-8, LVQ-4x4, global-8, global-4x4, and PQ with M = d
// segments (the only PQ setting accurate enough to skip re-ranking).
//
// One graph is built from float32 vectors and adopted by every storage, so
// the comparison isolates the traversal-distance codec exactly as the
// paper's Sec. 6.7 does.
#include "common.h"
#include "baselines/pq.h"

using namespace blinkbench;

namespace {

BuiltGraph CloneGraph(const BuiltGraph& g) {
  BuiltGraph out;
  out.entry_point = g.entry_point;
  out.build_seconds = g.build_seconds;
  out.graph = FlatGraph(g.graph.size(), g.graph.max_degree());
  for (size_t i = 0; i < g.graph.size(); ++i) {
    out.graph.SetNeighbors(i, g.graph.neighbors(i), g.graph.degree(i));
  }
  return out;
}

}  // namespace

int main() {
  Banner("Figure 12", "quantizer ablation on one graph (R=64, deep-96)");
  const size_t n = ScaledN(20000), nq = 400, k = 10;
  Dataset data = MakeDeepLike(n, nq);
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, k, data.metric);
  const VamanaBuildParams bp = GraphParams(64, data.metric);
  BuiltGraph master = BuildVamana(FloatStorage(data.base, data.metric), bp);
  std::printf("graph built from float32 in %.1fs, avg degree %.1f\n\n",
              master.build_seconds, master.graph.AverageDegree());

  HarnessOptions opts;
  opts.best_of = 3;
  const auto sweep = DefaultWindowSweep();

  auto run = [&](auto storage, const std::string& label) {
    VamanaIndex<decltype(storage)> idx(std::move(storage), CloneGraph(master), bp);
    auto pts = RunSweep(idx, data.queries, gt, sweep, opts);
    PrintCurve(label + "  [" + std::to_string(static_cast<int>(
                                  Mib(idx.memory_bytes()))) + " MiB]",
               pts);
  };

  run(FloatStorage(data.base, data.metric), "float32");
  run(LvqStorage(data.base, data.metric, 8), "LVQ-8");
  run(LvqStorage(data.base, data.metric, 4, 4, 32), "LVQ-4x4");
  run(GlobalQuantStorage(data.base, data.metric, 8, 0), "global-quant-8");
  run(GlobalQuantStorage(data.base, data.metric, 4, 4), "global-quant-4x4");
  {
    PqParams pp;
    pp.num_segments = data.base.cols();  // PQ_M96: 1 dim/segment
    run(PqStorage(data.base, data.metric, pp), "PQ_M96");
  }

  std::printf("Paper: LVQ-8 leads to recall 0.98 (global tops out at 0.96);\n"
              "LVQ-8 is 5.2x faster than PQ_M96 at 0.9 recall under the\n"
              "identical graph and engine.\n");
  return 0;
}
