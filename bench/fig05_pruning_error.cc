// Figure 5 (right): the pruning-rule error |E| vs the safety margin, as a
// function of the bit budget, comparing LVQ against global quantization,
// with Prop. 2 / Cor. 1 theory next to the empirical moments.
//
// Triplets (x, x*, x') are sampled as in the paper: x at random, x* among
// its T nearest neighbors, x' among those farther than x*. Pruning under
// compression agrees with full precision when |E| stays below the margin
// |a^T x' - b| * ||x - x*|| (Eq. 11).
#include "common.h"
#include "graph/pruning_error.h"

using namespace blinkbench;

namespace {

struct SchemeStats {
  double mean_abs_e = 0.0;
  double p3sigma = 0.0;  // mean + 3*std of |E| (the paper's error band)
  double theory_mu = 0.0;
  double theory_band = 0.0;
};

double DeltaOf(const LvqDataset& ds, uint32_t i) { return ds.constants(i).delta; }
double DeltaOf(const GlobalDataset& ds, uint32_t i) {
  (void)i;
  return ds.quantizers()[0].delta();
}

template <typename DatasetT>
SchemeStats Measure(const Dataset& data, const DatasetT& ds,
                    const std::vector<PruningTriplet>& triplets) {
  const size_t d = data.base.cols();
  std::vector<float> cx(d), cxs(d), cxp(d), qx(d), qxs(d), qxp(d);
  RunningStats abs_e;
  RunningStats theory_mu, theory_band;
  for (const auto& t : triplets) {
    for (size_t j = 0; j < d; ++j) {
      cx[j] = data.base(t.x, j) - ds.mean()[j];
      cxs[j] = data.base(t.x_star, j) - ds.mean()[j];
      cxp[j] = data.base(t.x_prime, j) - ds.mean()[j];
    }
    ds.DecodeCentered(t.x, qx.data());
    ds.DecodeCentered(t.x_star, qxs.data());
    ds.DecodeCentered(t.x_prime, qxp.data());
    abs_e.Add(std::fabs(PruningErrorE(cx.data(), cxs.data(), cxp.data(),
                                      qx.data(), qxs.data(), qxp.data(), d)));
    // Theory needs per-vector deltas and pairwise distances.
    const double dxx = std::sqrt(simd::L2Sqr(cx.data(), cxp.data(), d));
    const double dsx = std::sqrt(simd::L2Sqr(cxs.data(), cxp.data(), d));
    const double dxs = std::sqrt(simd::L2Sqr(cx.data(), cxs.data(), d));
    const PruningErrorTheory th = ComputePruningErrorTheory(
        DeltaOf(ds, t.x), DeltaOf(ds, t.x_star), DeltaOf(ds, t.x_prime), dxx,
        dsx, dxs, d);
    theory_mu.Add(th.mu_abs_e);
    theory_band.Add(th.mu_abs_e + 3.0 * th.sigma_abs_e);
  }
  return {abs_e.mean(), abs_e.mean() + 3.0 * abs_e.stddev(), theory_mu.mean(),
          theory_band.mean()};
}

}  // namespace

int main() {
  Banner("Figure 5", "pruning-rule error |E| vs bits: LVQ vs global + theory");
  const size_t n = ScaledN(10000);
  Dataset data = MakeDeepLike(n, 2);
  const size_t num_triplets = static_cast<size_t>(200 * std::max(1.0, BenchScale()));
  auto triplets = SamplePruningTriplets(data.base, num_triplets, 100, 17);

  // Margin is quantizer-independent.
  RunningStats margin;
  {
    const size_t d = data.base.cols();
    for (const auto& t : triplets) {
      margin.Add(PruningMargin(data.base.row(t.x), data.base.row(t.x_star),
                               data.base.row(t.x_prime), d));
    }
  }
  std::printf("safety margin E(|a^T x' - b| * ||x - x*||) = %.4f\n\n",
              margin.mean());
  std::printf("%-6s %-12s %-12s %-12s %-12s %-12s %-12s\n", "bits",
              "LVQ E|E|", "LVQ +3s", "glob E|E|", "glob +3s", "thr E|E|",
              "thr +3s");
  for (int bits : {2, 3, 4, 6, 8, 10, 12, 14, 16}) {
    LvqDataset::Options lo;
    lo.bits = bits;
    LvqDataset lvq = LvqDataset::Encode(data.base, lo);
    GlobalDataset::Options go;
    go.bits = bits;
    GlobalDataset glob = GlobalDataset::Encode(data.base, go);
    const SchemeStats sl = Measure(data, lvq, triplets);
    const SchemeStats sg = Measure(data, glob, triplets);
    std::printf("%-6d %-12.5f %-12.5f %-12.5f %-12.5f %-12.5f %-12.5f\n", bits,
                sl.mean_abs_e, sl.p3sigma, sg.mean_abs_e, sg.p3sigma,
                sl.theory_mu, sl.theory_band);
  }
  std::printf("\nPaper: LVQ-4 and LVQ-8 sit well inside the safe zone (bands\n"
              "below the margin); 4-bit global quantization grazes it, and\n"
              "2 bits overlap — no guarantees.\n");
  return 0;
}
