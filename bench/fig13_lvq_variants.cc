// Figure 13: one- vs two-level LVQ by dimensionality — float32, LVQ-8,
// LVQ-4x4, LVQ-4x8 on deep-96 (one-level wins: compute-bound) and
// DPR-768 (two-level wins: bandwidth-bound).
#include "common.h"

using namespace blinkbench;

namespace {

void RunDataset(const Dataset& data, size_t k) {
  Matrix<uint32_t> gt = ComputeGroundTruth(data.base, data.queries, k, data.metric);
  const VamanaBuildParams bp = GraphParams(32, data.metric);
  HarnessOptions opts;
  opts.best_of = 3;
  const auto sweep = DefaultWindowSweep();

  std::printf("--- %s (n=%zu, d=%zu, %s) ---\n", data.name.c_str(),
              data.base.rows(), data.base.cols(), MetricName(data.metric));
  {
    auto idx = BuildVamanaF32(data.base, data.metric, bp);
    PrintCurve("float32", RunSweep(*idx, data.queries, gt, sweep, opts));
  }
  {
    auto idx = BuildOgLvq(data.base, data.metric, 8, 0, bp);
    PrintCurve("LVQ-8", RunSweep(*idx, data.queries, gt, sweep, opts));
  }
  {
    auto idx = BuildOgLvq(data.base, data.metric, 4, 4, bp);
    PrintCurve("LVQ-4x4", RunSweep(*idx, data.queries, gt, sweep, opts));
  }
  {
    auto idx = BuildOgLvq(data.base, data.metric, 4, 8, bp);
    PrintCurve("LVQ-4x8", RunSweep(*idx, data.queries, gt, sweep, opts));
  }
}

}  // namespace

int main() {
  Banner("Figure 13", "one- vs two-level LVQ across dimensionalities");
  RunDataset(MakeDeepLike(ScaledN(20000), 400), 10);
  RunDataset(MakeDprLike(ScaledN(6000), 200), 10);
  std::printf("Paper: at d=96 LVQ-8's cheaper compute prevails; at d=768 the\n"
              "extra bandwidth reduction of LVQ-4x4 / LVQ-4x8 wins, with the\n"
              "8-bit residual restoring high recall in the final re-rank.\n");
  return 0;
}
