// Figures 3 & 14: per-dimension value distributions before and after
// de-meaning.
//
// The paper's observation: raw embedding dimensions have distinct means but
// similar spreads, so removing the mean homogenizes them and makes the
// values "highly amenable" to per-vector quantization. We print the
// per-dimension mean/stddev dispersion before/after de-meaning for three
// dataset families, plus an ASCII histogram of a representative dimension.
#include "common.h"

using namespace blinkbench;

namespace {

void Report(const Dataset& data) {
  const size_t n = data.base.rows(), d = data.base.cols();
  std::vector<RunningStats> dims(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) dims[j].Add(data.base(i, j));
  }
  // Dispersion of per-dimension means and stddevs.
  RunningStats mean_of_means, mean_of_stds;
  for (size_t j = 0; j < d; ++j) {
    mean_of_means.Add(dims[j].mean());
    mean_of_stds.Add(dims[j].stddev());
  }
  std::printf("%-18s  dims=%zu\n", data.name.c_str(), d);
  std::printf("  per-dim means : spread [%+.4f, %+.4f]  (stddev across dims %.4f)\n",
              mean_of_means.min(), mean_of_means.max(), mean_of_means.stddev());
  std::printf("  per-dim stddev: spread [%.4f, %.4f]   (stddev across dims %.4f)\n",
              mean_of_stds.min(), mean_of_stds.max(), mean_of_stds.stddev());
  std::printf("  after de-meaning every dimension is centered at 0 with the\n"
              "  same spreads: mean dispersion -> 0, stddev dispersion %.4f\n",
              mean_of_stds.stddev());

  // Representative dimension histogram, raw vs de-meaned.
  const size_t j = d / 3;
  Histogram raw(mean_of_means.min() - 3 * mean_of_stds.max(),
                mean_of_means.max() + 3 * mean_of_stds.max(), 21);
  Histogram centered(-3 * mean_of_stds.max(), 3 * mean_of_stds.max(), 21);
  for (size_t i = 0; i < n; ++i) {
    raw.Add(data.base(i, j));
    centered.Add(data.base(i, j) - dims[j].mean());
  }
  std::printf("  dim %zu raw:\n%s", j, raw.ToAscii(40).c_str());
  std::printf("  dim %zu de-meaned:\n%s\n", j, centered.ToAscii(40).c_str());
}

}  // namespace

int main() {
  Banner("Figures 3 / 14", "per-dimension distributions before/after de-meaning");
  Report(MakeDeepLike(ScaledN(20000), 10));
  Report(MakeGistLike(ScaledN(5000), 10));
  Report(MakeGloveLike(25, ScaledN(20000), 10));
  return 0;
}
